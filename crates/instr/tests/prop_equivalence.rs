//! Randomized test: the §6 optimizations never change what is detected.
//!
//! Random programs are generated from a small statement language and run
//! twice — once with naive instrumentation (a `registerptr` after every
//! pointer store) and once with the optimized pass (hoisting + elision).
//! Both runs must produce the same outcome (same trap or same return) and
//! invalidate exactly the same number of pointers. Cases come from the
//! in-repo seeded [`SmallRng`] (formerly proptest).

use std::sync::Arc;

use dangsan::{Config, DangSan, Detector, HookedHeap, StatsSnapshot};
use dangsan_heap::Heap;
use dangsan_instr::builder::FunctionBuilder;
use dangsan_instr::interp::Trap;
use dangsan_instr::ir::{BinOp, Operand, Program, Reg};
use dangsan_instr::{instrument, Machine, PassOptions};
use dangsan_vmem::rng::SmallRng;
use dangsan_vmem::AddressSpace;

#[cfg(not(feature = "heavy-tests"))]
const CASES: u64 = 128;
#[cfg(feature = "heavy-tests")]
const CASES: u64 = 1024;

const SLOTS: i64 = 8;
const OBJS: usize = 6;

#[derive(Debug, Clone)]
enum Stmt {
    /// Store a pointer to object `obj` into slot `slot`.
    Store { obj: usize, slot: i64 },
    /// A counted loop storing a pointer into a slot every iteration.
    LoopStore { obj: usize, slot: i64, iters: i64 },
    /// p = load slot; p += 8; store slot, p (the elision pattern).
    Increment { slot: i64 },
    /// Free object `obj` (ignored if already freed).
    Free { obj: usize },
    /// Dereference whatever pointer slot `slot` holds.
    Deref { slot: i64 },
}

fn random_stmt(rng: &mut SmallRng) -> Stmt {
    // Weights match the original strategy: 4 store, 2 each for the rest.
    match rng.gen_range(0u64..12) {
        0..=3 => Stmt::Store {
            obj: rng.gen_range(0usize..OBJS),
            slot: rng.gen_range(0i64..SLOTS),
        },
        4 | 5 => Stmt::LoopStore {
            obj: rng.gen_range(0usize..OBJS),
            slot: rng.gen_range(0i64..SLOTS),
            iters: rng.gen_range(1i64..6),
        },
        6 | 7 => Stmt::Increment {
            slot: rng.gen_range(0i64..SLOTS),
        },
        8 | 9 => Stmt::Free {
            obj: rng.gen_range(0usize..OBJS),
        },
        _ => Stmt::Deref {
            slot: rng.gen_range(0i64..SLOTS),
        },
    }
}

/// Compiles a statement list into a one-function program.
fn compile(stmts: &[Stmt]) -> Program {
    let mut fb = FunctionBuilder::new("main", 0);
    // One slab of pointer slots plus OBJS heap objects.
    let slab = fb.malloc(Operand::Imm(SLOTS * 8));
    let objs: Vec<Reg> = (0..OBJS).map(|_| fb.malloc(Operand::Imm(64))).collect();
    let mut freed = [false; OBJS];
    for s in stmts {
        match s {
            Stmt::Store { obj, slot } => {
                fb.store_ptr(slab, slot * 8, objs[*obj]);
            }
            Stmt::LoopStore { obj, slot, iters } => {
                let i = fb.iconst(0);
                let header = fb.new_block();
                let body = fb.new_block();
                let exit = fb.new_block();
                fb.jump(header);
                fb.switch_to(header);
                let c = fb.bin(BinOp::Lt, Operand::Reg(i), Operand::Imm(*iters));
                fb.branch(Operand::Reg(c), body, exit);
                fb.switch_to(body);
                fb.store_ptr(slab, slot * 8, objs[*obj]);
                fb.bin_into(i, BinOp::Add, Operand::Reg(i), Operand::Imm(1));
                fb.jump(header);
                fb.switch_to(exit);
            }
            Stmt::Increment { slot } => {
                let p = fb.load_ptr(slab, slot * 8);
                let p2 = fb.gep(p, Operand::Imm(8));
                fb.store_ptr(slab, slot * 8, p2);
            }
            Stmt::Free { obj } => {
                if !freed[*obj] {
                    fb.free(objs[*obj]);
                    freed[*obj] = true;
                }
            }
            Stmt::Deref { slot } => {
                let p = fb.load_ptr(slab, slot * 8);
                // Guard: only dereference plausible pointers (non-zero).
                let is_ptr = fb.bin(BinOp::Ne, Operand::Reg(p), Operand::Imm(0));
                let doit = fb.new_block();
                let skip = fb.new_block();
                fb.branch(Operand::Reg(is_ptr), doit, skip);
                fb.switch_to(doit);
                let _v = fb.load_i64(p, 0);
                fb.jump(skip);
                fb.switch_to(skip);
            }
        }
    }
    fb.ret(Some(Operand::Imm(0)));
    Program {
        funcs: vec![fb.finish()],
    }
}

fn run(prog: &Program, opts: PassOptions) -> (Result<Option<u64>, Trap>, StatsSnapshot) {
    let mem = Arc::new(AddressSpace::new());
    let heap = Heap::new(Arc::clone(&mem));
    let det = DangSan::new(Arc::clone(&mem), Config::default());
    let hh = HookedHeap::new(heap, Arc::clone(&det));
    let (instrumented, _) = instrument(prog, opts);
    instrumented
        .validate()
        .expect("valid after instrumentation");
    let mut m = Machine::new(hh, 0);
    let main = instrumented.func_by_name("main").unwrap();
    let r = m.run(&instrumented, main, &[]);
    (r, det.stats())
}

#[test]
fn optimized_pass_detects_exactly_what_naive_does() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xEC41 + case);
        let stmts: Vec<Stmt> = (0..rng.gen_range(1usize..40))
            .map(|_| random_stmt(&mut rng))
            .collect();
        let prog = compile(&stmts);
        prog.validate().expect("generated program valid");
        let (r_naive, s_naive) = run(&prog, PassOptions::naive());
        let (r_opt, s_opt) = run(&prog, PassOptions::optimized());
        assert_eq!(&r_naive, &r_opt, "outcomes diverge");
        assert_eq!(
            s_naive.ptrs_invalidated, s_opt.ptrs_invalidated,
            "invalidation sets diverge: naive={s_naive:?} opt={s_opt:?}"
        );
        // The optimizations only ever remove registrations.
        assert!(
            s_opt.ptrs_registered + s_opt.dup_ptrs <= s_naive.ptrs_registered + s_naive.dup_ptrs
        );
    }
}
