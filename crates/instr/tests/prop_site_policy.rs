//! Differential test: site-profiled routing never changes detection.
//!
//! Random programs from the same statement language as
//! `prop_equivalence` — plus a pointer-free churn loop that makes sites
//! Thin-eligible — run under two detector configurations: adaptive
//! routing off (every allocation takes today's Standard path) and on
//! with `thin_min_frees = 1` (the most aggressive legal router). Each
//! program runs TWICE on one machine so the second run executes against
//! warm site profiles: preamble objects whose first-run frees were clean
//! route Thin on the rerun, and any pointer store to them then exercises
//! the promotion path. Both arms must produce identical outcomes per run
//! (same trap or same return) and bit-identical behavioural counters —
//! the router may only trade work, never detection.
//!
//! The `corpus/` directory holds hand-minimized seeds for the routing
//! edge cases (clean churn, Thin-then-promoted UAF, realloc move),
//! committed so the exact shapes keep running as regressions.

use std::sync::Arc;

use dangsan::{Config, DangSan, Detector, HookedHeap, StatsSnapshot};
use dangsan_heap::Heap;
use dangsan_instr::builder::FunctionBuilder;
use dangsan_instr::interp::Trap;
use dangsan_instr::ir::{BinOp, Operand, Program, Reg};
use dangsan_instr::{instrument, parse_program, Machine, PassOptions};
use dangsan_vmem::rng::SmallRng;
use dangsan_vmem::AddressSpace;

#[cfg(not(feature = "heavy-tests"))]
const CASES: u64 = 96;
#[cfg(feature = "heavy-tests")]
const CASES: u64 = 768;

const SLOTS: i64 = 8;
const OBJS: usize = 6;

#[derive(Debug, Clone)]
enum Stmt {
    /// Store a pointer to object `obj` into slot `slot`.
    Store { obj: usize, slot: i64 },
    /// Pointer-free malloc/free churn: one site, `iters` clean frees —
    /// the traffic that earns a site its Thin routing.
    ChurnLoop { iters: i64 },
    /// Free object `obj` (ignored if already freed).
    Free { obj: usize },
    /// Dereference whatever pointer slot `slot` holds.
    Deref { slot: i64 },
}

fn random_stmt(rng: &mut SmallRng) -> Stmt {
    match rng.gen_range(0u64..10) {
        0..=2 => Stmt::Store {
            obj: rng.gen_range(0usize..OBJS),
            slot: rng.gen_range(0i64..SLOTS),
        },
        3..=5 => Stmt::ChurnLoop {
            iters: rng.gen_range(1i64..8),
        },
        6 | 7 => Stmt::Free {
            obj: rng.gen_range(0usize..OBJS),
        },
        _ => Stmt::Deref {
            slot: rng.gen_range(0i64..SLOTS),
        },
    }
}

/// Compiles a statement list into a one-function program.
fn compile(stmts: &[Stmt]) -> Program {
    let mut fb = FunctionBuilder::new("main", 0);
    let slab = fb.malloc(Operand::Imm(SLOTS * 8));
    let objs: Vec<Reg> = (0..OBJS).map(|_| fb.malloc(Operand::Imm(64))).collect();
    let mut freed = [false; OBJS];
    for s in stmts {
        match s {
            Stmt::Store { obj, slot } => {
                fb.store_ptr(slab, slot * 8, objs[*obj]);
            }
            Stmt::ChurnLoop { iters } => {
                let i = fb.iconst(0);
                let header = fb.new_block();
                let body = fb.new_block();
                let exit = fb.new_block();
                fb.jump(header);
                fb.switch_to(header);
                let c = fb.bin(BinOp::Lt, Operand::Reg(i), Operand::Imm(*iters));
                fb.branch(Operand::Reg(c), body, exit);
                fb.switch_to(body);
                let t = fb.malloc(Operand::Imm(48));
                fb.free(t);
                fb.bin_into(i, BinOp::Add, Operand::Reg(i), Operand::Imm(1));
                fb.jump(header);
                fb.switch_to(exit);
            }
            Stmt::Free { obj } => {
                if !freed[*obj] {
                    fb.free(objs[*obj]);
                    freed[*obj] = true;
                }
            }
            Stmt::Deref { slot } => {
                let p = fb.load_ptr(slab, slot * 8);
                let is_ptr = fb.bin(BinOp::Ne, Operand::Reg(p), Operand::Imm(0));
                let doit = fb.new_block();
                let skip = fb.new_block();
                fb.branch(Operand::Reg(is_ptr), doit, skip);
                fb.switch_to(doit);
                let _v = fb.load_i64(p, 0);
                fb.jump(skip);
                fb.switch_to(skip);
            }
        }
    }
    fb.ret(Some(Operand::Imm(0)));
    Program {
        funcs: vec![fb.finish()],
    }
}

/// Instruments `prog` and runs it twice on one machine (warm site
/// profiles on the rerun), returning both outcomes and the behavioural
/// counter snapshot. `policy` selects the arm.
#[allow(clippy::type_complexity)]
fn run_twice(prog: &Program, policy: bool) -> (Vec<Result<Option<u64>, Trap>>, StatsSnapshot) {
    let mem = Arc::new(AddressSpace::new());
    let heap = Heap::new(Arc::clone(&mem));
    let cfg = if policy {
        Config::default()
            .with_site_policy(true)
            .with_thin_min_frees(1)
    } else {
        Config::default()
    };
    let det = DangSan::new(Arc::clone(&mem), cfg);
    let hh = HookedHeap::new(heap, Arc::clone(&det));
    let (instrumented, _) = instrument(prog, PassOptions::optimized());
    instrumented
        .validate()
        .expect("valid after instrumentation");
    let main = instrumented.func_by_name("main").unwrap();
    let mut outcomes = Vec::new();
    for slot in 0..2 {
        let mut m = Machine::new(hh.clone(), slot);
        outcomes.push(m.run(&instrumented, main, &[]));
    }
    (outcomes, det.stats().behavioural())
}

/// Asserts the two arms agree on `prog`, returning the off arm's
/// outcomes for callers with expectations of their own.
fn assert_routing_equivalent(prog: &Program, label: &str) -> Vec<Result<Option<u64>, Trap>> {
    let (r_off, s_off) = run_twice(prog, false);
    let (r_on, s_on) = run_twice(prog, true);
    assert_eq!(r_off, r_on, "{label}: outcomes diverge under routing");
    assert_eq!(
        s_off, s_on,
        "{label}: behavioural counters diverge under routing"
    );
    r_off
}

#[test]
fn routing_detects_exactly_what_forced_standard_does() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x517E + case);
        let stmts: Vec<Stmt> = (0..rng.gen_range(1usize..30))
            .map(|_| random_stmt(&mut rng))
            .collect();
        let prog = compile(&stmts);
        prog.validate().expect("generated program valid");
        assert_routing_equivalent(&prog, &format!("case {case} ({stmts:?})"));
    }
}

#[test]
fn corpus_seeds_stay_equivalent() {
    // (file, source, expects_uaf_trap)
    let seeds: [(&str, &str, bool); 3] = [
        (
            "clean_churn_thin.ir",
            include_str!("corpus/clean_churn_thin.ir"),
            false,
        ),
        (
            "thin_promote_uaf.ir",
            include_str!("corpus/thin_promote_uaf.ir"),
            true,
        ),
        (
            "realloc_move_uaf.ir",
            include_str!("corpus/realloc_move_uaf.ir"),
            true,
        ),
    ];
    for (name, src, expects_trap) in seeds {
        let prog = parse_program(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        prog.validate().expect("corpus program valid");
        let outcomes = assert_routing_equivalent(&prog, name);
        for (run, r) in outcomes.iter().enumerate() {
            if expects_trap {
                assert!(
                    matches!(r, Err(Trap::UseAfterFree(_))),
                    "{name} run {run}: expected a UAF trap, got {r:?}"
                );
            } else {
                assert_eq!(r, &Ok(Some(0)), "{name} run {run}");
            }
        }
    }
}

#[test]
fn warm_rerun_actually_routes_thin() {
    // Sanity for the harness itself: the churn program's site must go
    // Thin under the on arm — otherwise every equivalence above is
    // vacuously comparing Standard against Standard.
    let prog = parse_program(include_str!("corpus/clean_churn_thin.ir")).unwrap();
    let mem = Arc::new(AddressSpace::new());
    let heap = Heap::new(Arc::clone(&mem));
    let det = DangSan::new(
        Arc::clone(&mem),
        Config::default()
            .with_site_policy(true)
            .with_thin_min_frees(1),
    );
    let hh = HookedHeap::new(heap, Arc::clone(&det));
    let (instrumented, _) = instrument(&prog, PassOptions::optimized());
    let main = instrumented.func_by_name("main").unwrap();
    let mut m = Machine::new(hh, 0);
    m.run(&instrumented, main, &[]).unwrap();
    let s = det.stats();
    assert!(s.routed_thin > 0, "churn site never routed Thin: {s:?}");
    assert!(s.frees_thin > 0, "no free took the thin path: {s:?}");
}
