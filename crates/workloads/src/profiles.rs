//! Workload profiles calibrated to the paper's published numbers.
//!
//! The SPEC CPU2006 binaries and reference inputs are not redistributable,
//! so Figure 9/11 and Table 1 are reproduced with *synthetic workloads
//! matched to each benchmark's published pointer-tracking profile*: the
//! object count, pointer registrations, duplicates, stale fraction and
//! hash-table usage from Table 1, plus a compute intensity calibrated so
//! the tracking-to-work ratio (the quantity that determines Figure 9's
//! shape) mirrors the paper. Counts are scaled down by a configurable
//! factor (default 20 000×) to laptop-friendly run times; all reported
//! statistics scale back up linearly.

/// One SPEC CPU2006 benchmark's profile. All absolute counts are the
/// paper's Table 1 values (DangSan columns; `dn_*` are DangNULL's where
/// reported).
#[derive(Debug, Clone, Copy)]
pub struct SpecProfile {
    /// Benchmark name, e.g. `400.perlbench`.
    pub name: &'static str,
    /// `# obj alloc`.
    pub objs: u64,
    /// `# hashtable`.
    pub hashtables: u64,
    /// `# ptrs`.
    pub ptrs: u64,
    /// `# inval`.
    pub inval: u64,
    /// `# stale`.
    pub stale: u64,
    /// `# dup`.
    pub dup: u64,
    /// DangNULL `# obj alloc` (None where the paper reports none).
    pub dn_objs: Option<u64>,
    /// DangNULL `# ptrs`.
    pub dn_ptrs: Option<u64>,
    /// DangNULL `# inval`.
    pub dn_inval: Option<u64>,
    /// DangSan run-time overhead from Figure 9 (1.0 = no overhead).
    pub fig9_dangsan: f64,
    /// FreeSentry overhead from Figure 9, where reported.
    pub fig9_freesentry: Option<f64>,
    /// DangNULL overhead from Figure 9, where reported.
    pub fig9_dangnull: Option<f64>,
    /// DangSan memory overhead from Figure 11 (multiplier).
    pub fig11_dangsan: f64,
    /// Typical allocation size range (bytes) for the synthetic workload.
    pub alloc_size: (u64, u64),
    /// Fraction of stores whose location is on the stack/globals rather
    /// than the heap. Derived from Table 1: where DangNULL reports
    /// near-zero `# ptrs`, virtually all pointer stores were invisible to
    /// its heap-only tracking (capped at 0.95 to keep some heap-located
    /// traffic in every profile).
    pub nonheap_loc_frac: f64,
}

const M: u64 = 1_000_000;
const K: u64 = 1_000;

/// Table 1, transcribed. Figure 9/11 per-benchmark values are read off
/// the paper's charts (the text pins the anchors: geomean 1.41 overall,
/// 1.22 on DangNULL's subset vs its 1.55, 1.23 on FreeSentry's subset vs
/// its 1.30; memory geomean 2.4×).
pub const SPEC: &[SpecProfile] = &[
    SpecProfile {
        name: "400.perlbench",
        objs: 350 * M,
        hashtables: 380 * K,
        ptrs: 40_490 * M,
        inval: 362 * M,
        stale: 53 * M,
        dup: 31_557 * M,
        dn_objs: None,
        dn_ptrs: None,
        dn_inval: None,
        fig9_dangsan: 2.05,
        fig9_freesentry: Some(1.55),
        fig9_dangnull: None,
        fig11_dangsan: 3.9,
        alloc_size: (16, 512),
        nonheap_loc_frac: 0.30,
    },
    SpecProfile {
        name: "401.bzip2",
        objs: 258,
        hashtables: 0,
        ptrs: 2200 * K,
        inval: 108,
        stale: 90,
        dup: 1868 * K,
        dn_objs: Some(7),
        dn_ptrs: Some(0),
        dn_inval: Some(0),
        fig9_dangsan: 1.04,
        fig9_freesentry: Some(1.06),
        fig9_dangnull: Some(1.10),
        fig11_dangsan: 1.05,
        alloc_size: (1 << 16, 1 << 20),
        nonheap_loc_frac: 0.95,
    },
    SpecProfile {
        name: "403.gcc",
        objs: 28 * M,
        hashtables: 524 * K,
        ptrs: 7170 * M,
        inval: 76 * M,
        stale: 110 * M,
        dup: 6738 * M,
        dn_objs: Some(165 * K),
        dn_ptrs: Some(3167 * K),
        dn_inval: Some(14 * K),
        fig9_dangsan: 1.55,
        fig9_freesentry: None,
        fig9_dangnull: Some(2.02),
        fig11_dangsan: 2.3,
        alloc_size: (32, 4096),
        nonheap_loc_frac: 0.95,
    },
    SpecProfile {
        name: "429.mcf",
        objs: 20,
        hashtables: 3,
        ptrs: 7658 * M,
        inval: 0,
        stale: 56 * M,
        dup: 7602 * M,
        dn_objs: Some(2),
        dn_ptrs: Some(0),
        dn_inval: Some(0),
        fig9_dangsan: 1.30,
        fig9_freesentry: Some(1.35),
        fig9_dangnull: Some(1.45),
        fig11_dangsan: 1.15,
        alloc_size: (1 << 20, 1 << 24),
        nonheap_loc_frac: 0.95,
    },
    SpecProfile {
        name: "433.milc",
        objs: 6530,
        hashtables: 6128,
        ptrs: 2585 * M,
        inval: 6,
        stale: 977 * M,
        dup: 1600 * M,
        dn_objs: Some(38),
        dn_ptrs: Some(0),
        dn_inval: Some(0),
        fig9_dangsan: 1.25,
        fig9_freesentry: Some(1.28),
        fig9_dangnull: Some(1.40),
        fig11_dangsan: 1.4,
        alloc_size: (1 << 14, 1 << 18),
        nonheap_loc_frac: 0.95,
    },
    SpecProfile {
        name: "444.namd",
        objs: 1339,
        hashtables: 0,
        ptrs: 2970 * K,
        inval: 3148,
        stale: 2159,
        dup: 1864 * K,
        dn_objs: Some(964),
        dn_ptrs: Some(0),
        dn_inval: Some(0),
        fig9_dangsan: 1.03,
        fig9_freesentry: Some(1.05),
        fig9_dangnull: Some(1.08),
        fig11_dangsan: 1.05,
        alloc_size: (1 << 12, 1 << 16),
        nonheap_loc_frac: 0.95,
    },
    SpecProfile {
        name: "445.gobmk",
        objs: 622 * K,
        hashtables: 15,
        ptrs: 607 * M,
        inval: 687 * K,
        stale: 46 * K,
        dup: 597 * M,
        dn_objs: Some(12 * K),
        dn_ptrs: Some(0),
        dn_inval: Some(0),
        fig9_dangsan: 1.20,
        fig9_freesentry: Some(1.22),
        fig9_dangnull: Some(1.35),
        fig11_dangsan: 1.3,
        alloc_size: (32, 2048),
        nonheap_loc_frac: 0.95,
    },
    SpecProfile {
        name: "447.dealII",
        objs: 151 * M,
        hashtables: 49,
        ptrs: 117 * M,
        inval: 27 * M,
        stale: 3975 * K,
        dup: 4220 * K,
        dn_objs: None,
        dn_ptrs: None,
        dn_inval: None,
        fig9_dangsan: 1.45,
        fig9_freesentry: None,
        fig9_dangnull: None,
        fig11_dangsan: 2.0,
        alloc_size: (24, 512),
        nonheap_loc_frac: 0.25,
    },
    SpecProfile {
        name: "450.soplex",
        objs: 236 * K,
        hashtables: 18 * K,
        ptrs: 836 * M,
        inval: 2913 * K,
        stale: 45 * M,
        dup: 785 * M,
        dn_objs: Some(K),
        dn_ptrs: Some(14 * K),
        dn_inval: Some(140),
        fig9_dangsan: 1.20,
        fig9_freesentry: Some(1.25),
        fig9_dangnull: Some(1.45),
        fig11_dangsan: 1.6,
        alloc_size: (256, 1 << 16),
        nonheap_loc_frac: 0.95,
    },
    SpecProfile {
        name: "453.povray",
        objs: 2427 * K,
        hashtables: 281,
        ptrs: 4679 * M,
        inval: 2218 * K,
        stale: 1565 * K,
        dup: 4457 * M,
        dn_objs: Some(15 * K),
        dn_ptrs: Some(7923 * K),
        dn_inval: Some(6 * K),
        fig9_dangsan: 1.50,
        fig9_freesentry: Some(1.40),
        fig9_dangnull: Some(1.90),
        fig11_dangsan: 1.3,
        alloc_size: (16, 256),
        nonheap_loc_frac: 0.95,
    },
    SpecProfile {
        name: "456.hmmer",
        objs: 2394 * K,
        hashtables: 56,
        ptrs: 3829 * K,
        inval: 1669 * K,
        stale: 100 * K,
        dup: 2040 * K,
        dn_objs: Some(84 * K),
        dn_ptrs: Some(0),
        dn_inval: Some(0),
        fig9_dangsan: 1.06,
        fig9_freesentry: Some(1.08),
        fig9_dangnull: Some(1.12),
        fig11_dangsan: 1.2,
        alloc_size: (64, 4096),
        nonheap_loc_frac: 0.95,
    },
    SpecProfile {
        name: "458.sjeng",
        objs: 20,
        hashtables: 0,
        ptrs: 4,
        inval: 0,
        stale: 0,
        dup: 0,
        dn_objs: Some(1),
        dn_ptrs: Some(0),
        dn_inval: Some(0),
        fig9_dangsan: 1.02,
        fig9_freesentry: Some(1.03),
        fig9_dangnull: Some(1.05),
        fig11_dangsan: 1.02,
        alloc_size: (1 << 16, 1 << 20),
        nonheap_loc_frac: 0.95,
    },
    SpecProfile {
        name: "462.libquantum",
        objs: 164,
        hashtables: 0,
        ptrs: 130,
        inval: 16,
        stale: 49,
        dup: 30,
        dn_objs: Some(49),
        dn_ptrs: Some(0),
        dn_inval: Some(0),
        fig9_dangsan: 1.02,
        fig9_freesentry: None,
        fig9_dangnull: None,
        fig11_dangsan: 1.02,
        alloc_size: (1 << 14, 1 << 18),
        nonheap_loc_frac: 0.40,
    },
    SpecProfile {
        name: "464.h264ref",
        objs: 178 * K,
        hashtables: 271,
        ptrs: 11 * M,
        inval: 318 * K,
        stale: 125 * K,
        dup: 5164 * K,
        dn_objs: Some(9 * K),
        dn_ptrs: Some(906),
        dn_inval: Some(101),
        fig9_dangsan: 1.12,
        fig9_freesentry: Some(1.15),
        fig9_dangnull: Some(1.25),
        fig11_dangsan: 1.25,
        alloc_size: (128, 1 << 14),
        nonheap_loc_frac: 0.95,
    },
    SpecProfile {
        name: "470.lbm",
        objs: 19,
        hashtables: 0,
        ptrs: 6004,
        inval: 0,
        stale: 2,
        dup: 3002,
        dn_objs: Some(2),
        dn_ptrs: Some(0),
        dn_inval: Some(0),
        fig9_dangsan: 1.02,
        fig9_freesentry: Some(1.02),
        fig9_dangnull: Some(1.04),
        fig11_dangsan: 1.02,
        alloc_size: (1 << 20, 1 << 24),
        nonheap_loc_frac: 0.95,
    },
    SpecProfile {
        name: "471.omnetpp",
        objs: 267 * M,
        hashtables: 104 * M,
        ptrs: 13_099 * M,
        inval: 36 * M,
        stale: 3421 * M,
        dup: 9207 * M,
        dn_objs: None,
        dn_ptrs: None,
        dn_inval: None,
        fig9_dangsan: 3.20,
        fig9_freesentry: None,
        fig9_dangnull: None,
        fig11_dangsan: 8.5,
        alloc_size: (32, 512),
        nonheap_loc_frac: 0.20,
    },
    SpecProfile {
        name: "473.astar",
        objs: 4800 * K,
        hashtables: 207 * K,
        ptrs: 1235 * M,
        inval: 11 * M,
        stale: 111 * M,
        dup: 1110 * M,
        dn_objs: Some(130 * K),
        dn_ptrs: Some(2 * K),
        dn_inval: Some(20),
        fig9_dangsan: 1.35,
        fig9_freesentry: Some(1.40),
        fig9_dangnull: Some(1.60),
        fig11_dangsan: 1.9,
        alloc_size: (32, 2048),
        nonheap_loc_frac: 0.95,
    },
    SpecProfile {
        name: "482.sphinx3",
        objs: 14 * M,
        hashtables: 2910,
        ptrs: 302 * M,
        inval: 9880 * K,
        stale: 476 * K,
        dup: 280 * M,
        dn_objs: Some(6 * K),
        dn_ptrs: Some(814 * K),
        dn_inval: Some(0),
        fig9_dangsan: 1.25,
        fig9_freesentry: Some(1.30),
        fig9_dangnull: Some(1.50),
        fig11_dangsan: 1.7,
        alloc_size: (32, 1024),
        nonheap_loc_frac: 0.95,
    },
    SpecProfile {
        name: "483.xalancbmk",
        objs: 135 * M,
        hashtables: 342 * K,
        ptrs: 2387 * M,
        inval: 152 * M,
        stale: 157 * M,
        dup: 1450 * M,
        dn_objs: Some(28 * K),
        dn_ptrs: Some(256 * K),
        dn_inval: Some(10 * K),
        fig9_dangsan: 1.85,
        fig9_freesentry: None,
        fig9_dangnull: Some(2.40),
        fig11_dangsan: 3.2,
        alloc_size: (24, 512),
        nonheap_loc_frac: 0.95,
    },
];

/// How a PARSEC/SPLASH-2X benchmark's threads share objects — the property
/// that decides how it scales under pointer tracking (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingPattern {
    /// Threads allocate and reference their own objects (blackscholes,
    /// swaptions): near-perfect scaling.
    ThreadLocal,
    /// Threads keep storing pointers to a set of *shared* objects (barnes,
    /// canneal): every object's log list grows one entry per thread, the
    /// worst case for DangSan's list walk.
    SharedHot,
    /// Mixed: mostly local with a fraction of shared stores (dedup,
    /// ferret-like pipelines).
    Mixed,
    /// Few objects, very many pointers to them (freqmine): hash-table
    /// country, the memory-overhead outlier of Figure 12.
    FewObjectsManyPtrs,
    /// Per-thread allocations that are never freed (water_nsquared):
    /// memory overhead grows with the thread count in Figure 12.
    NeverFree,
}

/// A PARSEC / SPLASH-2X benchmark profile.
#[derive(Debug, Clone, Copy)]
pub struct ParsecProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// From which suite.
    pub suite: &'static str,
    /// Sharing behaviour.
    pub pattern: SharingPattern,
    /// Single-thread overhead anchor from Figure 10.
    pub fig10_overhead_1t: f64,
    /// Memory overhead anchor from Figure 12 (fraction, 1 thread).
    pub fig12_mem_overhead: f64,
    /// Pointer stores per thread (scaled at run time).
    pub stores_per_thread: u64,
    /// Objects allocated per thread.
    pub objs_per_thread: u64,
}

/// The PARSEC/SPLASH-2X benchmarks the paper could build with LLVM.
pub const PARSEC: &[ParsecProfile] = &[
    ParsecProfile {
        name: "blackscholes",
        suite: "parsec",
        pattern: SharingPattern::ThreadLocal,
        fig10_overhead_1t: 1.05,
        fig12_mem_overhead: 0.15,
        stores_per_thread: 400_000,
        objs_per_thread: 2_000,
    },
    ParsecProfile {
        name: "canneal",
        suite: "parsec",
        pattern: SharingPattern::SharedHot,
        fig10_overhead_1t: 1.25,
        fig12_mem_overhead: 0.90,
        stores_per_thread: 300_000,
        objs_per_thread: 4_000,
    },
    ParsecProfile {
        name: "dedup",
        suite: "parsec",
        pattern: SharingPattern::Mixed,
        fig10_overhead_1t: 1.18,
        fig12_mem_overhead: 0.60,
        stores_per_thread: 350_000,
        objs_per_thread: 6_000,
    },
    ParsecProfile {
        name: "ferret",
        suite: "parsec",
        pattern: SharingPattern::Mixed,
        fig10_overhead_1t: 1.15,
        fig12_mem_overhead: 0.45,
        stores_per_thread: 300_000,
        objs_per_thread: 5_000,
    },
    ParsecProfile {
        name: "fluidanimate",
        suite: "parsec",
        pattern: SharingPattern::ThreadLocal,
        fig10_overhead_1t: 1.12,
        fig12_mem_overhead: 0.35,
        stores_per_thread: 350_000,
        objs_per_thread: 3_000,
    },
    ParsecProfile {
        name: "freqmine",
        suite: "parsec",
        pattern: SharingPattern::FewObjectsManyPtrs,
        fig10_overhead_1t: 1.30,
        fig12_mem_overhead: 4.71,
        stores_per_thread: 400_000,
        objs_per_thread: 64,
    },
    ParsecProfile {
        name: "streamcluster",
        suite: "parsec",
        pattern: SharingPattern::Mixed,
        fig10_overhead_1t: 1.10,
        fig12_mem_overhead: 0.30,
        stores_per_thread: 300_000,
        objs_per_thread: 2_000,
    },
    ParsecProfile {
        name: "swaptions",
        suite: "parsec",
        pattern: SharingPattern::ThreadLocal,
        fig10_overhead_1t: 1.06,
        fig12_mem_overhead: 0.20,
        stores_per_thread: 350_000,
        objs_per_thread: 2_500,
    },
    ParsecProfile {
        name: "vips",
        suite: "parsec",
        pattern: SharingPattern::ThreadLocal,
        fig10_overhead_1t: 0.98, // the paper measured slightly negative
        fig12_mem_overhead: 0.25,
        stores_per_thread: 250_000,
        objs_per_thread: 3_000,
    },
    ParsecProfile {
        name: "barnes",
        suite: "splash2x",
        pattern: SharingPattern::SharedHot,
        fig10_overhead_1t: 1.22,
        fig12_mem_overhead: 0.80,
        stores_per_thread: 350_000,
        objs_per_thread: 5_000,
    },
    ParsecProfile {
        name: "fmm",
        suite: "splash2x",
        pattern: SharingPattern::Mixed,
        fig10_overhead_1t: 1.15,
        fig12_mem_overhead: 0.50,
        stores_per_thread: 300_000,
        objs_per_thread: 4_000,
    },
    ParsecProfile {
        name: "ocean_cp",
        suite: "splash2x",
        pattern: SharingPattern::ThreadLocal,
        fig10_overhead_1t: 1.08,
        fig12_mem_overhead: 0.25,
        stores_per_thread: 300_000,
        objs_per_thread: 1_500,
    },
    ParsecProfile {
        name: "radiosity",
        suite: "splash2x",
        pattern: SharingPattern::Mixed,
        fig10_overhead_1t: 1.20,
        fig12_mem_overhead: 0.55,
        stores_per_thread: 350_000,
        objs_per_thread: 6_000,
    },
    ParsecProfile {
        name: "water_nsquared",
        suite: "splash2x",
        pattern: SharingPattern::NeverFree,
        fig10_overhead_1t: 1.12,
        fig12_mem_overhead: 1.18,
        stores_per_thread: 300_000,
        objs_per_thread: 8_000,
    },
    ParsecProfile {
        name: "water_spatial",
        suite: "splash2x",
        pattern: SharingPattern::Mixed,
        fig10_overhead_1t: 1.10,
        fig12_mem_overhead: 0.40,
        stores_per_thread: 300_000,
        objs_per_thread: 4_000,
    },
];

/// Web-server simulation configs (§8.2/§8.3). Requests-per-second and
/// memory anchors: Apache 21% slower & 4.5× memory, Nginx 30% & 1.8×,
/// Cherokee ≈0% & 1.1×.
#[derive(Debug, Clone, Copy)]
pub struct ServerProfile {
    /// Server name.
    pub name: &'static str,
    /// Worker threads (the paper uses 32).
    pub workers: usize,
    /// Heap allocations per request.
    pub allocs_per_request: u64,
    /// Pointer stores per request.
    pub stores_per_request: u64,
    /// Fraction of small per-request allocations retained in
    /// per-connection pools (drives Apache's 4.5× memory).
    pub retained_frac: f64,
    /// Static content / caches allocated at startup (Cherokee's big
    /// baseline RSS: 137 MB vs Apache's 40 MB and Nginx's 20 MB).
    pub static_bytes: u64,
    /// Paper throughput overhead anchor.
    pub paper_slowdown: f64,
    /// Paper memory overhead anchor (multiplier).
    pub paper_mem: f64,
}

/// The three servers from §8.2.
pub const SERVERS: &[ServerProfile] = &[
    ServerProfile {
        name: "apache",
        workers: 32,
        allocs_per_request: 24,
        stores_per_request: 160,
        retained_frac: 0.20,
        static_bytes: 2 << 20,
        paper_slowdown: 1.21,
        paper_mem: 4.5,
    },
    ServerProfile {
        name: "nginx",
        workers: 32,
        allocs_per_request: 10,
        stores_per_request: 220,
        retained_frac: 0.05,
        static_bytes: 1 << 20,
        paper_slowdown: 1.30,
        paper_mem: 1.8,
    },
    ServerProfile {
        name: "cherokee",
        workers: 32,
        allocs_per_request: 1,
        stores_per_request: 4,
        retained_frac: 0.0,
        static_bytes: 8 << 20,
        paper_slowdown: 1.003,
        paper_mem: 1.1,
    },
];

impl SpecProfile {
    /// Scaled operation budget for a run.
    pub fn scaled(&self, scale: u64) -> ScaledSpec {
        let stores = (self.ptrs / scale).clamp(64, 40_000_000);
        let objs = (self.objs / scale).clamp(16, stores.max(16));
        ScaledSpec {
            stores,
            objs,
            dup_frac: self.dup as f64 / self.ptrs.max(1) as f64,
            stale_frac: (self.stale as f64 / self.ptrs.max(1) as f64).min(0.95),
            hash_frac: (self.hashtables as f64 / self.objs.max(1) as f64).min(1.0),
        }
    }
}

/// Per-run budgets derived from a [`SpecProfile`].
#[derive(Debug, Clone, Copy)]
pub struct ScaledSpec {
    /// Pointer stores to issue.
    pub stores: u64,
    /// Objects to allocate.
    pub objs: u64,
    /// Fraction of stores that repeat the previous location.
    pub dup_frac: f64,
    /// Fraction of stores expected to be stale at free.
    pub stale_frac: f64,
    /// Fraction of objects that should accumulate enough pointers to spill
    /// into a hash table.
    pub hash_frac: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nineteen_spec_benchmarks_present() {
        assert_eq!(SPEC.len(), 19);
        let names: Vec<&str> = SPEC.iter().map(|p| p.name).collect();
        assert!(names.contains(&"471.omnetpp"));
        assert!(names.contains(&"400.perlbench"));
    }

    #[test]
    fn figure9_anchor_geomeans_hold() {
        // Overall geomean must be close to the paper's 1.41.
        let g: f64 = SPEC.iter().map(|p| p.fig9_dangsan.ln()).sum::<f64>() / SPEC.len() as f64;
        let geomean = g.exp();
        assert!(
            (1.30..1.52).contains(&geomean),
            "overall Fig9 geomean {geomean:.3} should be near 1.41"
        );
        // On DangNULL's subset: DangSan ~1.22 vs DangNULL ~1.55.
        let sub: Vec<&SpecProfile> = SPEC.iter().filter(|p| p.fig9_dangnull.is_some()).collect();
        let ds = (sub.iter().map(|p| p.fig9_dangsan.ln()).sum::<f64>() / sub.len() as f64).exp();
        let dn = (sub
            .iter()
            .map(|p| p.fig9_dangnull.unwrap().ln())
            .sum::<f64>()
            / sub.len() as f64)
            .exp();
        assert!((1.12..1.32).contains(&ds), "DangSan on subset: {ds:.3}");
        assert!((1.40..1.70).contains(&dn), "DangNULL on subset: {dn:.3}");
        // On FreeSentry's subset: DangSan ~1.23 vs FreeSentry ~1.30.
        let sub: Vec<&SpecProfile> = SPEC
            .iter()
            .filter(|p| p.fig9_freesentry.is_some())
            .collect();
        let ds = (sub.iter().map(|p| p.fig9_dangsan.ln()).sum::<f64>() / sub.len() as f64).exp();
        let fs = (sub
            .iter()
            .map(|p| p.fig9_freesentry.unwrap().ln())
            .sum::<f64>()
            / sub.len() as f64)
            .exp();
        assert!((1.13..1.33).contains(&ds), "DangSan on FS subset: {ds:.3}");
        assert!((1.20..1.40).contains(&fs), "FreeSentry subset: {fs:.3}");
    }

    #[test]
    fn figure11_geomean_holds() {
        let g: f64 = SPEC.iter().map(|p| p.fig11_dangsan.ln()).sum::<f64>() / SPEC.len() as f64;
        let geomean = g.exp();
        assert!(
            (1.6..2.6).contains(&geomean),
            "Fig11 geomean {geomean:.2} should be near 2.4x (paper) — ours is \
             conservative because chart bars saturate"
        );
    }

    #[test]
    fn scaling_clamps_are_sane() {
        for p in SPEC {
            let s = p.scaled(20_000);
            assert!(s.stores >= 64);
            assert!(s.objs >= 16);
            assert!((0.0..=1.0).contains(&s.dup_frac), "{}", p.name);
            assert!((0.0..=1.0).contains(&s.stale_frac), "{}", p.name);
        }
    }

    #[test]
    fn parsec_has_the_outliers() {
        assert!(PARSEC.iter().any(|p| p.name == "freqmine"
            && p.pattern == SharingPattern::FewObjectsManyPtrs
            && p.fig12_mem_overhead > 4.0));
        assert!(PARSEC
            .iter()
            .any(|p| p.name == "water_nsquared" && p.pattern == SharingPattern::NeverFree));
        assert!(PARSEC
            .iter()
            .any(|p| p.name == "vips" && p.fig10_overhead_1t < 1.0));
    }
}
