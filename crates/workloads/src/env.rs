//! Experiment environments: fresh (memory, heap, detector) triples.

use std::sync::Arc;

use dangsan::{Config, DangSan, Detector, HookedHeap, NullDetector};
use dangsan_baselines::{DangNull, DangSanLocked, FreeSentry, TagDetector, TagScheme};
use dangsan_heap::Heap;
use dangsan_vmem::AddressSpace;

/// Which detector a run uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorKind {
    /// Uninstrumented baseline.
    Baseline,
    /// DangSan with the given configuration.
    DangSan(Config),
    /// DangSan behind a global lock (ablation).
    DangSanLocked(Config),
    /// The DangNULL-style comparator.
    DangNull,
    /// The FreeSentry-style comparator (single-threaded only).
    FreeSentry,
    /// A dereference-time tagging arm (xTag / implicit-ID / PA-MAC).
    Tagging(TagScheme),
}

impl DetectorKind {
    /// Display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            DetectorKind::Baseline => "baseline",
            DetectorKind::DangSan(_) => "dangsan",
            DetectorKind::DangSanLocked(_) => "dangsan-locked",
            DetectorKind::DangNull => "dangnull",
            DetectorKind::FreeSentry => "freesentry",
            DetectorKind::Tagging(TagScheme::XTag { .. }) => "xtag",
            DetectorKind::Tagging(TagScheme::ImplicitId { .. }) => "implicit-id",
            DetectorKind::Tagging(TagScheme::PaMac { .. }) => "pa-mac",
        }
    }

    /// Whether the detector supports multithreaded workloads.
    pub fn thread_safe(&self) -> bool {
        !matches!(self, DetectorKind::FreeSentry)
    }

    /// The detector `Config` this kind carries, if any. Kinds without one
    /// (baseline, comparators) run on the default allocator settings.
    fn config(&self) -> Option<&Config> {
        match self {
            DetectorKind::DangSan(cfg) | DetectorKind::DangSanLocked(cfg) => Some(cfg),
            _ => None,
        }
    }

    /// Applies this kind's allocator-side settings to a fresh heap.
    fn configure_heap(&self, heap: &Heap) {
        if let Some(cfg) = self.config() {
            heap.set_thread_cached(cfg.thread_cached_heap);
        }
    }
}

/// Environment-variable overrides for the deferred-sweep knobs, the CI
/// matrix axis: `SWEEP_THREADS=0` forces the synchronous free path,
/// `SWEEP_THREADS=N` (N > 0) turns the deferred sweep on with N helper
/// threads, and `DEFERRED_SWEEP=0|1` overrides the mode independently
/// of the helper count. Unset variables leave `cfg` untouched, so local
/// runs and committed baselines see exactly the config the caller built.
///
/// Perf harnesses (the scaling bench) opt in by calling this on the
/// configs they build; [`local_env`]/[`shared_env`] deliberately do NOT
/// apply it, because deferred sweeping changes observable timing (a load
/// in the quarantine window reads the raw pointer until the sweep runs)
/// and the detection tests rely on synchronous trap semantics.
pub fn sweep_env_overrides(mut cfg: Config) -> Config {
    if let Ok(v) = std::env::var("SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            cfg = cfg.with_sweep_threads(n).with_deferred_sweep(n > 0);
        }
    }
    if let Ok(v) = std::env::var("DEFERRED_SWEEP") {
        cfg = cfg.with_deferred_sweep(v.trim() != "0");
    }
    cfg
}

/// Environment-variable overrides for the site-policy knobs, mirroring
/// [`sweep_env_overrides`]: `SITE_POLICY=on|1` enables adaptive routing
/// (`off|0` forces it off), `THIN_MIN_FREES=N` sets the clean-free count
/// a site must accumulate before routing Thin, and `HARDENED_PINS=N`
/// sets the hardened quarantine-pin budget. Unset variables leave `cfg`
/// untouched. Applied by the perf harnesses only, for the same reason as
/// the sweep overrides: the detection tests pin their own configs.
pub fn site_policy_env_overrides(mut cfg: Config) -> Config {
    if let Ok(v) = std::env::var("SITE_POLICY") {
        match v.trim() {
            "on" | "1" => cfg = cfg.with_site_policy(true),
            "off" | "0" => cfg = cfg.with_site_policy(false),
            _ => {}
        }
    }
    if let Ok(v) = std::env::var("THIN_MIN_FREES") {
        if let Ok(n) = v.trim().parse::<u64>() {
            cfg = cfg.with_thin_min_frees(n);
        }
    }
    if let Ok(v) = std::env::var("HARDENED_PINS") {
        if let Ok(n) = v.trim().parse::<u64>() {
            cfg = cfg.with_hardened_pins(n);
        }
    }
    cfg
}

/// Environment-variable overrides for the telemetry knobs, mirroring
/// [`sweep_env_overrides`]: `METRICS=on|1` enables the live metrics hub
/// and sampler (`off|0` forces them off) and `METRICS_INTERVAL_MS=N`
/// sets the sampler cadence. Unset variables leave `cfg` untouched.
/// Applied by the perf harnesses (so the CI `METRICS` matrix axis
/// reaches them); the detection tests pin their own configs.
pub fn metrics_env_overrides(mut cfg: Config) -> Config {
    if let Ok(v) = std::env::var("METRICS") {
        match v.trim() {
            "on" | "1" => cfg = cfg.with_metrics(true),
            "off" | "0" => cfg = cfg.with_metrics(false),
            _ => {}
        }
    }
    if let Ok(v) = std::env::var("METRICS_INTERVAL_MS") {
        if let Ok(n) = v.trim().parse::<u64>() {
            cfg = cfg.with_metrics_interval_ms(n);
        }
    }
    cfg
}

/// Environment-variable overrides for the tagging-arm knobs, mirroring
/// [`sweep_env_overrides`]: `TAG_BITS=N` sets the spare-bit tag width
/// (the detector clamps it to 1..=15) and `TAG_KEY=0xHEX` the key of
/// the keyed schemes (xTag is keyless; its key is left alone). Unset or
/// unparsable variables leave `scheme` untouched. Applied by the perf
/// harnesses only; the fuzz relation and detection tests pin their own
/// widths and keys.
pub fn tagging_env_overrides(scheme: TagScheme) -> TagScheme {
    let bits = std::env::var("TAG_BITS")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok());
    let key = std::env::var("TAG_KEY").ok().and_then(|v| {
        let v = v.trim();
        u64::from_str_radix(v.strip_prefix("0x").unwrap_or(v), 16).ok()
    });
    match scheme {
        TagScheme::XTag { bits: b } => TagScheme::XTag {
            bits: bits.unwrap_or(b),
        },
        TagScheme::ImplicitId { bits: b, key: k } => TagScheme::ImplicitId {
            bits: bits.unwrap_or(b),
            key: key.unwrap_or(k),
        },
        TagScheme::PaMac { bits: b, key: k } => TagScheme::PaMac {
            bits: bits.unwrap_or(b),
            key: key.unwrap_or(k),
        },
    }
}

/// A fresh single-threaded environment (any detector kind).
pub fn local_env(kind: DetectorKind) -> HookedHeap<dyn Detector> {
    let mem = Arc::new(AddressSpace::new());
    let heap = Heap::new(Arc::clone(&mem));
    kind.configure_heap(&heap);
    let det: Arc<dyn Detector> = match kind {
        DetectorKind::Baseline => Arc::new(NullDetector),
        DetectorKind::DangSan(cfg) => DangSan::new(Arc::clone(&mem), cfg),
        DetectorKind::DangSanLocked(cfg) => DangSanLocked::new(Arc::clone(&mem), cfg),
        DetectorKind::DangNull => DangNull::new(Arc::clone(&mem)),
        DetectorKind::FreeSentry => FreeSentry::new(Arc::clone(&mem), Arc::clone(&heap)),
        DetectorKind::Tagging(scheme) => TagDetector::new(scheme),
    };
    HookedHeap::new(heap, det)
}

/// A fresh thread-safe environment.
///
/// # Panics
///
/// Panics for [`DetectorKind::FreeSentry`]: by construction it cannot
/// satisfy `Send + Sync` (the paper's "cannot support multithreaded
/// programs" encoded in the type system), so asking for a shared
/// environment with it is a harness bug.
pub fn shared_env(kind: DetectorKind) -> HookedHeap<dyn Detector + Send + Sync> {
    let mem = Arc::new(AddressSpace::new());
    let heap = Heap::new(Arc::clone(&mem));
    kind.configure_heap(&heap);
    let det: Arc<dyn Detector + Send + Sync> = match kind {
        DetectorKind::Baseline => Arc::new(NullDetector),
        DetectorKind::DangSan(cfg) => DangSan::new(Arc::clone(&mem), cfg),
        DetectorKind::DangSanLocked(cfg) => DangSanLocked::new(Arc::clone(&mem), cfg),
        DetectorKind::DangNull => DangNull::new(Arc::clone(&mem)),
        DetectorKind::FreeSentry => {
            panic!("FreeSentry does not support multithreaded programs")
        }
        DetectorKind::Tagging(scheme) => TagDetector::new(scheme),
    };
    HookedHeap::new(heap, det)
}

#[cfg(test)]
mod tests {
    use super::*;

    use dangsan_baselines::{DEFAULT_TAG_BITS, DEFAULT_TAG_KEY};

    fn tagging_kinds() -> [DetectorKind; 3] {
        [
            DetectorKind::Tagging(TagScheme::XTag {
                bits: DEFAULT_TAG_BITS,
            }),
            DetectorKind::Tagging(TagScheme::ImplicitId {
                bits: DEFAULT_TAG_BITS,
                key: DEFAULT_TAG_KEY,
            }),
            DetectorKind::Tagging(TagScheme::PaMac {
                bits: DEFAULT_TAG_BITS,
                key: DEFAULT_TAG_KEY,
            }),
        ]
    }

    #[test]
    fn every_kind_builds_a_local_env() {
        let [xtag, implicit, pamac] = tagging_kinds();
        for kind in [
            DetectorKind::Baseline,
            DetectorKind::DangSan(Config::default()),
            DetectorKind::DangSanLocked(Config::default()),
            DetectorKind::DangNull,
            DetectorKind::FreeSentry,
            xtag,
            implicit,
            pamac,
        ] {
            let hh = local_env(kind);
            let a = hh.malloc(32).unwrap();
            hh.free(a.base).unwrap();
        }
    }

    #[test]
    fn tagging_labels_name_the_scheme() {
        let [xtag, implicit, pamac] = tagging_kinds();
        assert_eq!(xtag.label(), "xtag");
        assert_eq!(implicit.label(), "implicit-id");
        assert_eq!(pamac.label(), "pa-mac");
    }

    #[test]
    fn shared_env_works_for_thread_safe_kinds() {
        let [xtag, implicit, pamac] = tagging_kinds();
        for kind in [
            DetectorKind::Baseline,
            DetectorKind::DangSan(Config::default()),
            DetectorKind::DangSanLocked(Config::default()),
            DetectorKind::DangNull,
            xtag,
            implicit,
            pamac,
        ] {
            assert!(kind.thread_safe());
            let hh = shared_env(kind);
            let a = hh.malloc(32).unwrap();
            hh.free(a.base).unwrap();
        }
        assert!(!DetectorKind::FreeSentry.thread_safe());
    }

    #[test]
    #[should_panic(expected = "multithreaded")]
    fn shared_env_rejects_freesentry() {
        let _ = shared_env(DetectorKind::FreeSentry);
    }

    #[test]
    fn sweep_env_overrides_follow_the_matrix_variables() {
        // Single test covering all cases so the env-var mutation never
        // races another assertion in this binary.
        std::env::remove_var("SWEEP_THREADS");
        std::env::remove_var("DEFERRED_SWEEP");
        let base = Config::default();
        let cfg = sweep_env_overrides(base);
        assert_eq!(cfg.deferred_sweep, base.deferred_sweep);
        assert_eq!(cfg.sweep_threads, base.sweep_threads);

        std::env::set_var("SWEEP_THREADS", "2");
        let cfg = sweep_env_overrides(Config::default());
        assert!(cfg.deferred_sweep);
        assert_eq!(cfg.sweep_threads, 2);

        std::env::set_var("SWEEP_THREADS", "0");
        let cfg = sweep_env_overrides(Config::default());
        assert!(!cfg.deferred_sweep);
        assert_eq!(cfg.sweep_threads, 0);

        std::env::set_var("DEFERRED_SWEEP", "1");
        let cfg = sweep_env_overrides(Config::default());
        assert!(cfg.deferred_sweep, "DEFERRED_SWEEP wins over thread count");
        assert_eq!(cfg.sweep_threads, 0);

        std::env::remove_var("SWEEP_THREADS");
        std::env::remove_var("DEFERRED_SWEEP");

        // Site-policy axis, same discipline (and same single-test rule).
        let base = Config::default();
        let cfg = site_policy_env_overrides(base);
        assert_eq!(cfg.site_policy, base.site_policy);
        assert_eq!(cfg.thin_min_frees, base.thin_min_frees);
        assert_eq!(cfg.hardened_pin_objects, base.hardened_pin_objects);

        std::env::set_var("SITE_POLICY", "on");
        std::env::set_var("THIN_MIN_FREES", "8");
        std::env::set_var("HARDENED_PINS", "16");
        let cfg = site_policy_env_overrides(Config::default());
        assert!(cfg.site_policy);
        assert_eq!(cfg.thin_min_frees, 8);
        assert_eq!(cfg.hardened_pin_objects, 16);

        std::env::set_var("SITE_POLICY", "0");
        let cfg = site_policy_env_overrides(Config::default().with_site_policy(true));
        assert!(!cfg.site_policy, "explicit off beats the built config");

        std::env::set_var("SITE_POLICY", "banana");
        let cfg = site_policy_env_overrides(Config::default());
        assert!(!cfg.site_policy, "unparsable values leave cfg untouched");

        std::env::remove_var("SITE_POLICY");
        std::env::remove_var("THIN_MIN_FREES");
        std::env::remove_var("HARDENED_PINS");

        // Telemetry axis, same discipline (and same single-test rule).
        let base = Config::default();
        let cfg = metrics_env_overrides(base);
        assert_eq!(cfg.metrics, base.metrics);
        assert_eq!(cfg.metrics_interval_ms, base.metrics_interval_ms);

        std::env::set_var("METRICS", "1");
        std::env::set_var("METRICS_INTERVAL_MS", "25");
        let cfg = metrics_env_overrides(Config::default());
        assert!(cfg.metrics);
        assert_eq!(cfg.metrics_interval_ms, 25);

        std::env::set_var("METRICS", "off");
        let cfg = metrics_env_overrides(Config::default().with_metrics(true));
        assert!(!cfg.metrics, "explicit off beats the built config");

        std::env::set_var("METRICS", "banana");
        let cfg = metrics_env_overrides(Config::default());
        assert!(!cfg.metrics, "unparsable values leave cfg untouched");

        std::env::remove_var("METRICS");
        std::env::remove_var("METRICS_INTERVAL_MS");

        // Tagging axis, same discipline (and same single-test rule).
        let base = TagScheme::ImplicitId {
            bits: DEFAULT_TAG_BITS,
            key: DEFAULT_TAG_KEY,
        };
        assert_eq!(tagging_env_overrides(base), base);

        std::env::set_var("TAG_BITS", "4");
        std::env::set_var("TAG_KEY", "0xBEEF");
        assert_eq!(
            tagging_env_overrides(base),
            TagScheme::ImplicitId {
                bits: 4,
                key: 0xBEEF
            }
        );
        assert_eq!(
            tagging_env_overrides(TagScheme::XTag {
                bits: DEFAULT_TAG_BITS
            }),
            TagScheme::XTag { bits: 4 },
            "xTag takes the width and ignores the key"
        );

        std::env::set_var("TAG_BITS", "banana");
        std::env::set_var("TAG_KEY", "banana");
        assert_eq!(
            tagging_env_overrides(base),
            base,
            "unparsable values leave the scheme untouched"
        );

        std::env::remove_var("TAG_BITS");
        std::env::remove_var("TAG_KEY");
    }

    #[test]
    fn thread_cached_heap_flag_reaches_the_heap() {
        let on = shared_env(DetectorKind::DangSan(Config::default()));
        assert!(on.heap().thread_cached());
        let off = shared_env(DetectorKind::DangSan(
            Config::default().with_thread_cached_heap(false),
        ));
        assert!(!off.heap().thread_cached());
        let locked = local_env(DetectorKind::DangSanLocked(
            Config::default().with_thread_cached_heap(false),
        ));
        assert!(!locked.heap().thread_cached());
    }
}
