//! Experiment environments: fresh (memory, heap, detector) triples.

use std::sync::Arc;

use dangsan::{Config, DangSan, Detector, HookedHeap, NullDetector};
use dangsan_baselines::{DangNull, DangSanLocked, FreeSentry};
use dangsan_heap::Heap;
use dangsan_vmem::AddressSpace;

/// Which detector a run uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorKind {
    /// Uninstrumented baseline.
    Baseline,
    /// DangSan with the given configuration.
    DangSan(Config),
    /// DangSan behind a global lock (ablation).
    DangSanLocked(Config),
    /// The DangNULL-style comparator.
    DangNull,
    /// The FreeSentry-style comparator (single-threaded only).
    FreeSentry,
}

impl DetectorKind {
    /// Display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            DetectorKind::Baseline => "baseline",
            DetectorKind::DangSan(_) => "dangsan",
            DetectorKind::DangSanLocked(_) => "dangsan-locked",
            DetectorKind::DangNull => "dangnull",
            DetectorKind::FreeSentry => "freesentry",
        }
    }

    /// Whether the detector supports multithreaded workloads.
    pub fn thread_safe(&self) -> bool {
        !matches!(self, DetectorKind::FreeSentry)
    }

    /// The detector `Config` this kind carries, if any. Kinds without one
    /// (baseline, comparators) run on the default allocator settings.
    fn config(&self) -> Option<&Config> {
        match self {
            DetectorKind::DangSan(cfg) | DetectorKind::DangSanLocked(cfg) => Some(cfg),
            _ => None,
        }
    }

    /// Applies this kind's allocator-side settings to a fresh heap.
    fn configure_heap(&self, heap: &Heap) {
        if let Some(cfg) = self.config() {
            heap.set_thread_cached(cfg.thread_cached_heap);
        }
    }
}

/// A fresh single-threaded environment (any detector kind).
pub fn local_env(kind: DetectorKind) -> HookedHeap<dyn Detector> {
    let mem = Arc::new(AddressSpace::new());
    let heap = Heap::new(Arc::clone(&mem));
    kind.configure_heap(&heap);
    let det: Arc<dyn Detector> = match kind {
        DetectorKind::Baseline => Arc::new(NullDetector),
        DetectorKind::DangSan(cfg) => DangSan::new(Arc::clone(&mem), cfg),
        DetectorKind::DangSanLocked(cfg) => DangSanLocked::new(Arc::clone(&mem), cfg),
        DetectorKind::DangNull => DangNull::new(Arc::clone(&mem)),
        DetectorKind::FreeSentry => FreeSentry::new(Arc::clone(&mem), Arc::clone(&heap)),
    };
    HookedHeap::new(heap, det)
}

/// A fresh thread-safe environment.
///
/// # Panics
///
/// Panics for [`DetectorKind::FreeSentry`]: by construction it cannot
/// satisfy `Send + Sync` (the paper's "cannot support multithreaded
/// programs" encoded in the type system), so asking for a shared
/// environment with it is a harness bug.
pub fn shared_env(kind: DetectorKind) -> HookedHeap<dyn Detector + Send + Sync> {
    let mem = Arc::new(AddressSpace::new());
    let heap = Heap::new(Arc::clone(&mem));
    kind.configure_heap(&heap);
    let det: Arc<dyn Detector + Send + Sync> = match kind {
        DetectorKind::Baseline => Arc::new(NullDetector),
        DetectorKind::DangSan(cfg) => DangSan::new(Arc::clone(&mem), cfg),
        DetectorKind::DangSanLocked(cfg) => DangSanLocked::new(Arc::clone(&mem), cfg),
        DetectorKind::DangNull => DangNull::new(Arc::clone(&mem)),
        DetectorKind::FreeSentry => {
            panic!("FreeSentry does not support multithreaded programs")
        }
    };
    HookedHeap::new(heap, det)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_a_local_env() {
        for kind in [
            DetectorKind::Baseline,
            DetectorKind::DangSan(Config::default()),
            DetectorKind::DangSanLocked(Config::default()),
            DetectorKind::DangNull,
            DetectorKind::FreeSentry,
        ] {
            let hh = local_env(kind);
            let a = hh.malloc(32).unwrap();
            hh.free(a.base).unwrap();
        }
    }

    #[test]
    fn shared_env_works_for_thread_safe_kinds() {
        for kind in [
            DetectorKind::Baseline,
            DetectorKind::DangSan(Config::default()),
            DetectorKind::DangSanLocked(Config::default()),
            DetectorKind::DangNull,
        ] {
            assert!(kind.thread_safe());
            let hh = shared_env(kind);
            let a = hh.malloc(32).unwrap();
            hh.free(a.base).unwrap();
        }
        assert!(!DetectorKind::FreeSentry.thread_safe());
    }

    #[test]
    #[should_panic(expected = "multithreaded")]
    fn shared_env_rejects_freesentry() {
        let _ = shared_env(DetectorKind::FreeSentry);
    }

    #[test]
    fn thread_cached_heap_flag_reaches_the_heap() {
        let on = shared_env(DetectorKind::DangSan(Config::default()));
        assert!(on.heap().thread_cached());
        let off = shared_env(DetectorKind::DangSan(
            Config::default().with_thread_cached_heap(false),
        ));
        assert!(!off.heap().thread_cached());
        let locked = local_env(DetectorKind::DangSanLocked(
            Config::default().with_thread_cached_heap(false),
        ));
        assert!(!locked.heap().thread_cached());
    }
}
