//! PARSEC / SPLASH-2X-shaped multithreaded kernels (Figures 10 and 12).
//!
//! Scaling under pointer tracking is determined by how threads share
//! objects: thread-local traffic appends to disjoint logs and scales
//! linearly, while stores to shared objects make every object's log list
//! grow one entry per thread and contend on the CAS insert. The kernels
//! here reproduce each benchmark's sharing pattern with a *fixed total
//! amount of work* divided across threads, as in the paper's strong-
//! scaling experiment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dangsan::{Detector, HookedHeap};
use dangsan_vmem::rng::SmallRng;
use dangsan_vmem::Addr;

use crate::cost::spin;
use crate::profiles::{ParsecProfile, SharingPattern};
use crate::spec::RunResult;

/// Work is fixed at this many thread-units regardless of thread count
/// (strong scaling): `total_stores = stores_per_thread * WORK_UNITS`.
pub const WORK_UNITS: u64 = 8;

/// Runs the kernel for `profile` with `threads` workers on `hh`.
pub fn run_parsec<D>(
    profile: &ParsecProfile,
    threads: usize,
    scale: u64,
    compute_per_store: u32,
    hh: &HookedHeap<D>,
    seed: u64,
) -> RunResult
where
    D: Detector + Send + Sync + ?Sized,
{
    let total_stores = (profile.stores_per_thread * WORK_UNITS / scale.max(1)).max(threads as u64);
    let stores_per_thread = total_stores / threads as u64;
    // Strong scaling: the total allocation count is fixed and split across
    // threads — except for NeverFree benchmarks, whose per-thread state is
    // per-thread by design (that is their Figure 12 story).
    let total_objs = (profile.objs_per_thread * WORK_UNITS / scale.max(1)).max(4);
    let objs_per_thread = if profile.pattern == SharingPattern::NeverFree {
        total_objs
    } else {
        (total_objs / threads as u64).max(4)
    }
    .min(stores_per_thread.max(4));

    // Shared objects for the shared patterns, allocated before spawning.
    // NeverFree benchmarks (water_nsquared) work on large *fixed* shared
    // arrays while every thread accumulates never-freed private state —
    // that fixed denominator is why their relative memory overhead grows
    // with the thread count in Figure 12.
    let (shared_count, shared_size) = match profile.pattern {
        SharingPattern::FewObjectsManyPtrs => (16, 4096),
        SharingPattern::SharedHot => (64, 1024),
        SharingPattern::Mixed => (64, 1024),
        SharingPattern::NeverFree => (8, 128 * 1024),
        SharingPattern::ThreadLocal => (0, 0),
    };
    // Per-pattern behaviour: private allocation sizes and how widely each
    // object's incoming pointers are spread over the slot slab. A wide
    // spread means many distinct logged locations per object (hash-table
    // country for FewObjectsManyPtrs); a narrow one models field/iterator
    // stores.
    let (alloc_lo, alloc_hi, slot_width) = match profile.pattern {
        SharingPattern::ThreadLocal => (32, 2048, 8u64),
        SharingPattern::Mixed => (32, 2048, 16),
        SharingPattern::SharedHot => (32, 2048, 48),
        SharingPattern::FewObjectsManyPtrs => (32, 2048, 1024),
        SharingPattern::NeverFree => (16, 64, 8),
    };
    let shared: Vec<(Addr, u64)> = (0..shared_count)
        .map(|_| {
            let a = hh.malloc(shared_size).expect("shared object");
            (a.base, shared_size)
        })
        .collect();
    // One *shared* slab of pointer slots: threads store pointers into the
    // same program data structures, so the set of distinct locations per
    // object does not multiply with the thread count (only the per-thread
    // logs do, which is DangSan's actual per-thread cost).
    let slab = hh.malloc(1024 * 8).expect("slab");

    let done_stores = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let hh = hh.clone();
            let shared = &shared;
            let done = &done_stores;
            let pattern = profile.pattern;
            let slab_base = slab.base;
            scope.spawn(move || {
                let mut th = hh.thread_handle();
                let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64) << 32);
                let mut live: Vec<(Addr, u64)> = Vec::new();
                let live_cap = 256usize;
                let shared_frac = match pattern {
                    SharingPattern::ThreadLocal => 0.0,
                    SharingPattern::SharedHot => 0.9,
                    SharingPattern::Mixed => 0.2,
                    SharingPattern::FewObjectsManyPtrs => 1.0,
                    // Most pointer traffic references the shared arrays.
                    SharingPattern::NeverFree => 0.8,
                };
                let mut allocated = 0u64;
                let mut spin_acc = 0u64;
                for i in 0..stores_per_thread {
                    // Interleave allocations with stores.
                    if allocated < objs_per_thread
                        && i % (stores_per_thread / objs_per_thread.max(1)).max(1) == 0
                    {
                        if live.len() >= live_cap && pattern != SharingPattern::NeverFree {
                            let (base, _) = live.swap_remove(rng.gen_range(0..live.len()));
                            th.free(base).expect("free");
                        }
                        let size = rng.gen_range(alloc_lo..alloc_hi);
                        let a = th.malloc(size).expect("alloc");
                        live.push((a.base, size));
                        allocated += 1;
                    }
                    let (tidx, (target, tsize)) = if !shared.is_empty() && rng.gen_bool(shared_frac)
                    {
                        let i = rng.gen_range(0..shared.len());
                        (i, shared[i])
                    } else if !live.is_empty() {
                        let i = rng.gen_range(0..live.len());
                        (i, live[i])
                    } else if let Some(&s) = shared.first() {
                        (0, s)
                    } else {
                        (0, (0, 0))
                    };
                    if target != 0 {
                        // Each object receives pointers from a small slot
                        // neighbourhood (iterator/field patterns), keeping
                        // distinct locations per object realistic instead
                        // of spraying the whole slab.
                        // Threads write disjoint partitions of the shared
                        // structures (as parallel phases do), so the total
                        // set of logged locations stays bounded while each
                        // thread keeps its own per-object log.
                        let part = 1024 / threads.max(1) as u64;
                        let slot = t as u64 * part
                            + (tidx as u64 * 8 + rng.gen_range(0..slot_width)) % part.max(1);
                        let loc = slab_base + slot * 8;
                        let value = target + rng.gen_range(0..tsize.min(512));
                        th.store_ptr(loc, value).expect("store");
                    }
                    spin_acc ^= spin(compute_per_store, i ^ t as u64);
                }
                std::hint::black_box(spin_acc);
                // Cleanup unless this benchmark leaks by design
                // (water_nsquared keeps per-thread objects forever).
                if pattern != SharingPattern::NeverFree {
                    for (base, _) in live {
                        th.free(base).expect("free");
                    }
                }
                done.fetch_add(stores_per_thread, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();
    // Sample memory before teardown (mean-RSS-style measurement).
    let heap_resident = hh.heap().resident_bytes();
    let metadata_bytes = hh.detector().metadata_bytes();
    for (base, _) in shared {
        hh.free(base).expect("shared free");
    }
    hh.free(slab.base).expect("slab free");

    RunResult {
        name: profile.name.to_string(),
        detector: hh.detector().name().to_string(),
        elapsed,
        stores: done_stores.load(Ordering::Relaxed),
        stats: hh.detector().stats(),
        heap_resident,
        metadata_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{shared_env, DetectorKind};
    use crate::profiles::PARSEC;
    use dangsan::Config;

    fn profile(name: &str) -> &'static ParsecProfile {
        PARSEC.iter().find(|p| p.name == name).unwrap()
    }

    #[test]
    fn kernels_run_with_multiple_threads() {
        for name in ["blackscholes", "canneal", "freqmine", "water_nsquared"] {
            let p = profile(name);
            let hh = shared_env(DetectorKind::DangSan(Config::default()));
            let r = run_parsec(p, 4, 50, 0, &hh, 9);
            assert!(r.stores > 0, "{name}");
            assert!(r.stats.ptrs_registered > 0, "{name}");
        }
    }

    #[test]
    fn shared_hot_grows_multi_thread_log_lists() {
        let p = profile("canneal");
        let hh = shared_env(DetectorKind::DangSan(Config::default()));
        let r = run_parsec(p, 8, 50, 0, &hh, 2);
        // Shared objects are written by many threads, so far more logs
        // than objects-with-one-writer would need.
        assert!(
            r.stats.logs_created > r.stats.objects_allocated / 4,
            "logs {} objects {}",
            r.stats.logs_created,
            r.stats.objects_allocated
        );
    }

    #[test]
    fn never_free_pattern_keeps_memory_proportional_to_threads() {
        let p = profile("water_nsquared");
        let mem_for = |threads: usize| {
            let hh = shared_env(DetectorKind::DangSan(Config::default()));
            let r = run_parsec(p, threads, 100, 0, &hh, 4);
            r.heap_resident
        };
        let one = mem_for(1);
        let eight = mem_for(8);
        assert!(
            eight as f64 >= one as f64 * 1.1,
            "resident with 8 threads ({eight}) should exceed 1 thread ({one})"
        );
    }

    #[test]
    fn freqmine_spills_into_hash_tables() {
        let p = profile("freqmine");
        let hh = shared_env(DetectorKind::DangSan(Config::default()));
        let r = run_parsec(p, 4, 20, 0, &hh, 6);
        assert!(r.stats.hashtables > 0);
        // Metadata dominated by pointer structures, the Figure 12 outlier.
        assert!(r.metadata_bytes > 0);
    }

    #[test]
    fn fixed_total_work_shrinks_per_thread_share() {
        let p = profile("blackscholes");
        let hh1 = shared_env(DetectorKind::Baseline);
        let r1 = run_parsec(p, 1, 100, 0, &hh1, 8);
        let hh8 = shared_env(DetectorKind::Baseline);
        let r8 = run_parsec(p, 8, 100, 0, &hh8, 8);
        // Same total stores (± rounding to thread counts).
        let diff = r1.stores.abs_diff(r8.stores);
        assert!(diff <= r1.stores / 10, "{} vs {}", r1.stores, r8.stores);
    }
}
