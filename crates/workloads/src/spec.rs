//! The SPEC CPU2006-shaped single-threaded workload generator.
//!
//! One run replays a benchmark's pointer-tracking profile (see
//! [`crate::profiles`]): objects are allocated and freed with the
//! benchmark's lifetime pattern, pointers to them are stored into heap
//! slots, simulated stack slots and globals in the benchmark's mix, and
//! each store is followed by the calibrated amount of plain compute. The
//! same seed produces the identical operation sequence for every detector,
//! so run-time ratios are apples-to-apples.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dangsan::{Detector, HookedHeap, StatsSnapshot};
use dangsan_vmem::rng::SmallRng;
use dangsan_vmem::{Addr, BumpSegment, GLOBALS_BASE, STACKS_BASE};

use crate::cost::spin;
use crate::profiles::SpecProfile;

/// Result of one workload run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload name.
    pub name: String,
    /// Detector label.
    pub detector: String,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Pointer stores issued.
    pub stores: u64,
    /// Detector statistics at the end.
    pub stats: StatsSnapshot,
    /// Simulated heap resident bytes (peak = final; the heap never
    /// shrinks, like tcmalloc).
    pub heap_resident: u64,
    /// Detector metadata bytes.
    pub metadata_bytes: u64,
}

impl RunResult {
    /// Total memory footprint (program + detector), for Figure 11/12.
    pub fn total_memory(&self) -> u64 {
        self.heap_resident + self.metadata_bytes
    }
}

/// Number of heap pointer slots the workload cycles through.
const HEAP_SLOTS: u64 = 4096;
const STACK_SLOTS: u64 = 512;
const GLOBAL_SLOTS: u64 = 512;

/// Runs the SPEC-shaped workload for `profile` on `hh`.
///
/// `scale` divides the paper's Table 1 counts (20 000 ≈ seconds-long
/// figure runs); `compute_per_store` is the calibrated busy-work between
/// stores; `seed` fixes the operation sequence.
pub fn run_spec<D: Detector + ?Sized>(
    profile: &SpecProfile,
    scale: u64,
    compute_per_store: u32,
    hh: &HookedHeap<D>,
    seed: u64,
) -> RunResult {
    let s = profile.scaled(scale);
    let mut rng = SmallRng::seed_from_u64(seed);

    // Location arenas. Globals and a "stack" segment come from the
    // simulated address space directly; heap slots from a slab object.
    let mem = Arc::clone(hh.mem());
    let _globals = BumpSegment::map(Arc::clone(&mem), GLOBALS_BASE, GLOBAL_SLOTS * 8 + 4096)
        .expect("fresh env");
    let mut stack =
        BumpSegment::map(Arc::clone(&mem), STACKS_BASE, STACK_SLOTS * 8 + 4096).expect("fresh env");
    let stack_base = stack.alloc(STACK_SLOTS * 8).expect("fits");
    let slab = hh.malloc(HEAP_SLOTS * 8).expect("slab");

    // Live object ring. Hot objects (the front few) receive a large share
    // of stores, which is what drives hash-table fallback in benchmarks
    // like omnetpp and milc.
    let live_cap = (s.objs / 4).clamp(8, 4096) as usize;
    let mut live: Vec<(Addr, u64)> = Vec::with_capacity(live_cap);
    // The fraction of objects that spill into hash tables (Table 1's
    // #hashtable/#obj) is reproduced by concentrating non-duplicate
    // stores on a "hot" prefix of the live set sized by that fraction.
    let hot_prob = if s.hash_frac > 0.001 { 0.85 } else { 0.10 };
    let hot_set = ((live_cap as f64 * s.hash_frac).ceil() as usize).clamp(4, 2048);
    let stores_per_obj = s.stores / s.objs.max(1);

    let mut last_loc: Addr = slab.base;
    let mut last_value: Addr = 0;
    let mut spin_acc = 0u64;
    let mut stores_done = 0u64;

    // Location chooser for non-duplicate stores. The duplicate case —
    // "loops with a pointer iterator variable" (§4.4) re-storing the same
    // pointer to the same location — is handled by the caller, because a
    // true duplicate repeats both the location and the value.
    let pick_loc = |rng: &mut SmallRng, last_loc: Addr| -> Addr {
        let r = rng.gen_f64();
        if r < profile.nonheap_loc_frac {
            // Stack or global location (DangNULL cannot see these).
            if rng.gen_bool(0.5) {
                stack_base + rng.gen_range(0..STACK_SLOTS) * 8
            } else {
                GLOBALS_BASE + rng.gen_range(0..GLOBAL_SLOTS) * 8
            }
        } else if rng.gen_bool(0.5) {
            // Spatial locality: the next slot over (compression fodder).
            let next = last_loc + 8;
            if next < slab.base + HEAP_SLOTS * 8 && next >= slab.base {
                next
            } else {
                slab.base + rng.gen_range(0..HEAP_SLOTS) * 8
            }
        } else {
            slab.base + rng.gen_range(0..HEAP_SLOTS) * 8
        }
    };

    let start = Instant::now();
    for obj_i in 0..s.objs {
        // Allocation, with benchmark-typical sizes (log-uniform).
        let (lo, hi) = profile.alloc_size;
        let size = if lo >= hi {
            lo
        } else {
            let llo = (lo as f64).ln();
            let lhi = (hi as f64).ln();
            rng.gen_range(llo..lhi).exp() as u64
        };
        if live.len() == live_cap {
            // Free the oldest object — its still-live pointers get
            // invalidated (inval) and overwritten slots show up stale.
            let (base, _) = live.remove(rng.gen_range(0..live.len() / 2 + 1));
            hh.free(base).expect("valid free");
        }
        let a = hh.malloc(size).expect("alloc");
        live.push((a.base, size));

        // Pointer stores attributed to this allocation step.
        for _ in 0..stores_per_obj {
            let (loc, value) = if last_value != 0 && rng.gen_f64() < s.dup_frac {
                // True duplicate: the same pointer re-stored to the same
                // location (the lookback's target pattern).
                (last_loc, last_value)
            } else {
                let (target_base, target_size) = if rng.gen_bool(hot_prob) && !live.is_empty() {
                    live[rng.gen_range(0..live.len().min(hot_set))]
                } else {
                    live[rng.gen_range(0..live.len())]
                };
                let value = target_base + rng.gen_range(0..=target_size.min(256));
                (pick_loc(&mut rng, last_loc), value)
            };
            hh.store_ptr(loc, value).expect("store");
            last_loc = loc;
            last_value = value;
            stores_done += 1;
            spin_acc ^= spin(compute_per_store, stores_done);
        }
        let _ = obj_i;
    }
    // Remaining stores beyond the per-object quota.
    while stores_done < s.stores {
        let (loc, value) = if last_value != 0 && rng.gen_f64() < s.dup_frac {
            (last_loc, last_value)
        } else {
            let (target_base, target_size) = live[rng.gen_range(0..live.len())];
            let value = target_base + rng.gen_range(0..=target_size.min(256));
            (pick_loc(&mut rng, last_loc), value)
        };
        hh.store_ptr(loc, value).expect("store");
        last_loc = loc;
        last_value = value;
        stores_done += 1;
        spin_acc ^= spin(compute_per_store, stores_done);
    }
    // Sample memory while the working set is live (the paper reports RSS
    // during the run, not after teardown).
    let heap_resident = hh.heap().resident_bytes();
    let metadata_bytes = hh.detector().metadata_bytes();
    // Tear down: free everything (each free runs invalidation).
    for (base, _) in live.drain(..) {
        hh.free(base).expect("valid free");
    }
    let elapsed = start.elapsed();
    std::hint::black_box(spin_acc);

    RunResult {
        name: profile.name.to_string(),
        detector: hh.detector().name().to_string(),
        elapsed,
        stores: stores_done,
        stats: hh.detector().stats(),
        heap_resident,
        metadata_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{local_env, DetectorKind};
    use crate::profiles::SPEC;
    use dangsan::Config;

    fn profile(name: &str) -> &'static SpecProfile {
        SPEC.iter().find(|p| p.name == name).unwrap()
    }

    #[test]
    fn workload_is_deterministic_in_op_counts() {
        let p = profile("445.gobmk");
        let a = {
            let hh = local_env(DetectorKind::DangSan(Config::default()));
            run_spec(p, 500_000, 0, &hh, 7)
        };
        let b = {
            let hh = local_env(DetectorKind::DangSan(Config::default()));
            run_spec(p, 500_000, 0, &hh, 7)
        };
        assert_eq!(a.stores, b.stores);
        assert_eq!(
            a.stats.behavioural(),
            b.stats.behavioural(),
            "same seed, same detector history"
        );
    }

    #[test]
    fn dangsan_tracks_more_than_dangnull_on_every_benchmark() {
        // Table 1's headline: DangSan invalidates orders of magnitude more
        // pointers because DangNULL misses non-heap locations.
        for name in ["400.perlbench", "403.gcc", "483.xalancbmk"] {
            let p = profile(name);
            let ds = {
                let hh = local_env(DetectorKind::DangSan(Config::default()));
                run_spec(p, 2_000_000, 0, &hh, 11)
            };
            let dn = {
                let hh = local_env(DetectorKind::DangNull);
                run_spec(p, 2_000_000, 0, &hh, 11)
            };
            assert!(
                ds.stats.ptrs_registered > dn.stats.ptrs_registered,
                "{name}: DangSan {} <= DangNULL {}",
                ds.stats.ptrs_registered,
                dn.stats.ptrs_registered
            );
            assert!(
                ds.stats.ptrs_invalidated >= dn.stats.ptrs_invalidated,
                "{name}"
            );
        }
    }

    #[test]
    fn duplicate_heavy_profiles_produce_duplicates() {
        // mcf: dup/ptrs ≈ 0.99 in Table 1.
        let p = profile("429.mcf");
        let hh = local_env(DetectorKind::DangSan(Config::default()));
        let r = run_spec(p, 2_000_000, 0, &hh, 3);
        assert!(
            r.stats.dup_ptrs as f64 >= 0.5 * r.stats.ptrs_registered as f64,
            "dup {} vs ptrs {}",
            r.stats.dup_ptrs,
            r.stats.ptrs_registered
        );
    }

    #[test]
    fn hash_heavy_profile_allocates_hash_tables() {
        // milc: nearly every object ends up with a hash table.
        let p = profile("433.milc");
        let hh = local_env(DetectorKind::DangSan(Config::default()));
        let r = run_spec(p, 20_000, 0, &hh, 3);
        assert!(r.stats.hashtables > 0, "{:?}", r.stats);
    }

    #[test]
    fn all_profiles_run_quickly_at_high_scale() {
        for p in SPEC {
            let hh = local_env(DetectorKind::DangSan(Config::default()));
            let r = run_spec(p, 5_000_000, 0, &hh, 1);
            assert!(r.stores >= 64, "{}", p.name);
            assert!(r.stats.objects_freed > 0 || r.stats.objects_allocated < 32);
        }
    }

    #[test]
    fn memory_overhead_ranks_match_figure11_shape() {
        // omnetpp must dwarf bzip2 in relative metadata footprint.
        let run = |name: &str| {
            let p = profile(name);
            let hh = local_env(DetectorKind::DangSan(Config::default()));
            let r = run_spec(p, 500_000, 0, &hh, 5);
            r.total_memory() as f64 / r.heap_resident.max(1) as f64
        };
        let omnetpp = run("471.omnetpp");
        let bzip2 = run("401.bzip2");
        assert!(
            omnetpp > bzip2 * 1.5,
            "omnetpp {omnetpp:.2}x should exceed bzip2 {bzip2:.2}x"
        );
    }
}
