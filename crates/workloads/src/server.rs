//! Web-server-shaped workload (§8.2 throughput, §8.3 memory).
//!
//! The paper benchmarks Apache, Nginx and Cherokee with ApacheBench: 128
//! concurrent connections, 100 000 requests, 32 workers, a tiny response
//! so the CPU — and therefore the pointer-tracking instrumentation — is
//! the bottleneck. The simulation runs `workers` threads pulling requests
//! from a shared counter; each request allocates the server's typical
//! object graph, links it up with pointer stores, optionally retains part
//! of it in per-connection pools (Apache's memory behaviour), and frees
//! the rest.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dangsan::{Detector, HookedHeap};
use dangsan_vmem::rng::SmallRng;
use dangsan_vmem::Addr;

use crate::cost::spin;
use crate::profiles::ServerProfile;

/// Result of a server benchmark run.
#[derive(Debug, Clone)]
pub struct ServerResult {
    /// Server name.
    pub name: String,
    /// Detector label.
    pub detector: String,
    /// Requests served.
    pub requests: u64,
    /// Requests per second.
    pub rps: f64,
    /// Median per-request wall time in nanoseconds (ApacheBench's
    /// "50% served within" line).
    pub p50_ns: u64,
    /// 99th-percentile per-request wall time in nanoseconds — the tail
    /// a thin-routed fast path is supposed to shave.
    pub p99_ns: u64,
    /// Simulated resident memory (heap) at the end.
    pub heap_resident: u64,
    /// Detector metadata bytes.
    pub metadata_bytes: u64,
}

impl ServerResult {
    /// Total memory footprint for the §8.3 comparison.
    pub fn total_memory(&self) -> u64 {
        self.heap_resident + self.metadata_bytes
    }
}

/// Runs `requests` total requests through `profile.workers` workers.
///
/// `compute_per_request` is the calibrated request-processing work
/// (parsing, response formatting, syscall time) that accompanies the
/// allocator/pointer traffic.
pub fn run_server<D>(
    profile: &ServerProfile,
    requests: u64,
    compute_per_request: u32,
    hh: &HookedHeap<D>,
    seed: u64,
) -> ServerResult
where
    D: Detector + Send + Sync + ?Sized,
{
    // Static content / caches loaded at startup.
    let mut static_blocks = Vec::new();
    let mut left = profile.static_bytes;
    while left > 0 {
        let chunk = left.min(1 << 20);
        static_blocks.push(hh.malloc(chunk).expect("static content").base);
        left -= chunk;
    }
    let next = AtomicU64::new(0);
    let start = Instant::now();
    // Per-request wall times, merged across workers for the percentile
    // lines ApacheBench prints alongside throughput.
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(requests as usize);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..profile.workers {
            let hh = hh.clone();
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut th = hh.thread_handle();
                let mut rng = SmallRng::seed_from_u64(seed ^ ((w as u64) << 40));
                // Per-worker connection pool (retained allocations) and a
                // slab of pointer slots standing in for connection state.
                let slab = th.malloc(512 * 8).expect("worker slab");
                let mut pool: Vec<Addr> = Vec::new();
                let mut lats: Vec<u64> = Vec::new();
                let mut spin_acc = 0u64;
                while next.fetch_add(1, Ordering::Relaxed) < requests {
                    let req_start = Instant::now();
                    spin_acc ^= spin(compute_per_request, seed ^ w as u64);
                    // Parse + build the request/response object graph.
                    let mut request_objs: Vec<(Addr, u64)> = Vec::new();
                    for _ in 0..profile.allocs_per_request {
                        let size = rng.gen_range(64..512);
                        let a = th.malloc(size).expect("req alloc");
                        request_objs.push((a.base, size));
                    }
                    for i in 0..profile.stores_per_request {
                        if request_objs.is_empty() {
                            break;
                        }
                        // Servers with connection pools (Apache) keep
                        // linking pool entries from fresh request state,
                        // so the pooled objects' logs grow for the whole
                        // run — the source of the 4.5x memory in §8.3.
                        let (t, ts) = if !pool.is_empty() && rng.gen_bool(0.5) {
                            (pool[rng.gen_range(0..pool.len())], 64)
                        } else {
                            request_objs[rng.gen_range(0..request_objs.len())]
                        };
                        // Connection state keeps pointers in a handful of
                        // fields per object, not spread over the slab.
                        let loc = slab.base + ((t / 64 + i % 8) % 512) * 8;
                        th.store_ptr(loc, t + rng.gen_range(0..ts)).expect("store");
                    }
                    // Respond, then tear the graph down; a fraction stays
                    // in the connection pool (Apache's behaviour).
                    for (base, size) in request_objs {
                        // Pools retain the small header-like allocations.
                        if size < 128
                            && rng.gen_bool((profile.retained_frac * 4.0).min(1.0))
                            && pool.len() < 100_000
                        {
                            pool.push(base);
                        } else {
                            th.free(base).expect("req free");
                        }
                    }
                    lats.push(req_start.elapsed().as_nanos() as u64);
                }
                std::hint::black_box(spin_acc);
                for base in pool {
                    th.free(base).expect("pool free");
                }
                lats
            }));
        }
        for h in handles {
            latencies_ns.extend(h.join().expect("worker"));
        }
    });
    let elapsed = start.elapsed();
    for b in static_blocks {
        hh.free(b).expect("static free");
    }
    latencies_ns.sort_unstable();
    ServerResult {
        name: profile.name.to_string(),
        detector: hh.detector().name().to_string(),
        requests,
        rps: requests as f64 / elapsed.as_secs_f64(),
        p50_ns: percentile(&latencies_ns, 50),
        p99_ns: percentile(&latencies_ns, 99),
        heap_resident: hh.heap().resident_bytes(),
        metadata_bytes: hh.detector().metadata_bytes(),
    }
}

/// Nearest-rank percentile over an already-sorted sample; 0 for an
/// empty one.
fn percentile(sorted_ns: &[u64], pct: u64) -> u64 {
    match sorted_ns.len() {
        0 => 0,
        n => sorted_ns[((n as u64 - 1) * pct / 100) as usize],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{shared_env, DetectorKind};
    use crate::profiles::SERVERS;
    use dangsan::Config;

    #[test]
    fn all_three_servers_serve_requests() {
        for p in SERVERS {
            let hh = shared_env(DetectorKind::DangSan(Config::default()));
            let r = run_server(p, 500, 0, &hh, 1);
            assert_eq!(r.requests, 500);
            assert!(r.rps > 0.0);
            assert!(r.p50_ns > 0, "median latency must be measured");
            assert!(r.p99_ns >= r.p50_ns, "percentiles out of order");
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[7], 50), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
    }

    #[test]
    fn apache_profile_tracks_most_per_request_state() {
        let apache = &SERVERS[0];
        let cherokee = &SERVERS[2];
        let run = |p| {
            let hh = shared_env(DetectorKind::DangSan(Config::default()));
            let r = run_server(p, 400, 0, &hh, 2);
            (r.metadata_bytes, r.heap_resident)
        };
        let (a_meta, a_res) = run(apache);
        let (c_meta, c_res) = run(cherokee);
        // Apache's retained pools + rich graphs mean far more tracked
        // state than Cherokee's near-static serving (4.5x vs 1.1x in §8.3).
        let a_ratio = (a_meta + a_res) as f64 / a_res as f64;
        let c_ratio = (c_meta + c_res) as f64 / c_res as f64;
        assert!(
            a_ratio > c_ratio,
            "apache {a_ratio:.2}x should exceed cherokee {c_ratio:.2}x"
        );
    }

    #[test]
    fn baseline_and_dangsan_serve_same_request_count() {
        let p = &SERVERS[1];
        let hb = shared_env(DetectorKind::Baseline);
        let rb = run_server(p, 300, 0, &hb, 3);
        let hd = shared_env(DetectorKind::DangSan(Config::default()));
        let rd = run_server(p, 300, 0, &hd, 3);
        assert_eq!(rb.requests, rd.requests);
        assert!(rd.metadata_bytes > rb.metadata_bytes);
    }
}
