//! Web-server-shaped workload (§8.2 throughput, §8.3 memory).
//!
//! The paper benchmarks Apache, Nginx and Cherokee with ApacheBench: 128
//! concurrent connections, 100 000 requests, 32 workers, a tiny response
//! so the CPU — and therefore the pointer-tracking instrumentation — is
//! the bottleneck. The simulation runs `workers` threads pulling requests
//! from a shared counter; each request allocates the server's typical
//! object graph, links it up with pointer stores, optionally retains part
//! of it in per-connection pools (Apache's memory behaviour), and frees
//! the rest.
//!
//! Latency is accumulated in lock-free log-bucketed histograms
//! ([`dangsan_telemetry::Histogram`], ≤12.5% relative bucket error)
//! rather than per-request `Vec`s, so memory stays bounded at any
//! request count and the percentile lines extend to p999. Requests are
//! drawn from three classes hashed deterministically from the request
//! index — `static` file serving (a light graph), `dynamic` page builds
//! (the full profile graph) and `churn` session teardowns (the worker's
//! retained pool is freed and rebuilt) — each with its own histogram.
//!
//! Two load modes:
//!
//! * **closed-loop** ([`run_server`]): workers issue the next request as
//!   soon as the previous one finishes; latency is service time. This is
//!   the capacity probe.
//! * **open-loop** ([`ServerOptions::offered_rps`]): request `i` is
//!   *scheduled* at `start + i/rate` regardless of completions, and
//!   latency is measured from that scheduled arrival — so queueing delay
//!   under a fixed offered load shows up in the tail, the way production
//!   dashboards measure it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dangsan::telemetry::{Histogram, HistogramSnapshot, MetricsHub};
use dangsan::{Detector, HookedHeap};
use dangsan_vmem::rng::SmallRng;
use dangsan_vmem::Addr;

use crate::cost::spin;
use crate::profiles::ServerProfile;

/// The request mix: name and share (percent) of each class, drawn by a
/// deterministic hash of the request index so every detector arm serves
/// the identical schedule.
const CLASS_STATIC: usize = 0;
const CLASS_DYNAMIC: usize = 1;
const CLASS_CHURN: usize = 2;
const CLASS_NAMES: [&str; 3] = ["static", "dynamic", "churn"];

/// Per-class latency summary, read off that class's histogram.
#[derive(Debug, Clone)]
pub struct ClassLatency {
    /// Class name (`static`, `dynamic` or `churn`).
    pub class: &'static str,
    /// Requests of this class served.
    pub count: u64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

/// Result of a server benchmark run.
#[derive(Debug, Clone)]
pub struct ServerResult {
    /// Server name.
    pub name: String,
    /// Detector label.
    pub detector: String,
    /// Requests served.
    pub requests: u64,
    /// Requests per second.
    pub rps: f64,
    /// Offered load for an open-loop run; `None` for closed-loop.
    pub offered_rps: Option<f64>,
    /// Median per-request wall time in nanoseconds (ApacheBench's
    /// "50% served within" line).
    pub p50_ns: u64,
    /// 99th-percentile per-request wall time in nanoseconds — the tail
    /// a thin-routed fast path is supposed to shave.
    pub p99_ns: u64,
    /// 99.9th-percentile latency, the dashboard tail.
    pub p999_ns: u64,
    /// Exact maximum latency.
    pub max_ns: u64,
    /// Per-request-class latency breakdown.
    pub classes: Vec<ClassLatency>,
    /// Churn requests that tore down (and freed) a worker's session pool.
    pub sessions_churned: u64,
    /// Simulated resident memory (heap) at the end.
    pub heap_resident: u64,
    /// Detector metadata bytes.
    pub metadata_bytes: u64,
    /// The live latency histograms behind the percentile fields, keyed
    /// by registered metric name (overall first, then one per class).
    /// A hub holds only `Weak` references, so keeping these in the
    /// result is what keeps the latency gauges exportable after the
    /// run — drop the result and they leave the export.
    pub latency_hists: Vec<(String, Arc<Histogram>)>,
}

impl ServerResult {
    /// Total memory footprint for the §8.3 comparison.
    pub fn total_memory(&self) -> u64 {
        self.heap_resident + self.metadata_bytes
    }
}

/// Optional knobs for [`run_server_opts`].
#[derive(Default)]
pub struct ServerOptions {
    /// Open-loop offered load in requests/second; `None` runs closed-loop.
    pub offered_rps: Option<f64>,
    /// A telemetry hub to register the live latency histograms on: the
    /// sampler's time series then carries `server_latency_ns_p99` etc.
    /// next to the detector's own gauges.
    pub hub: Option<Arc<MetricsHub>>,
}

/// SplitMix64 finalizer: the deterministic request-index → class hash.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Class of request `index`: 60% static, 35% dynamic, 5% churn.
fn class_of(index: u64, seed: u64) -> usize {
    match mix(index ^ seed.rotate_left(17)) % 100 {
        0..=59 => CLASS_STATIC,
        60..=94 => CLASS_DYNAMIC,
        _ => CLASS_CHURN,
    }
}

/// Runs `requests` total requests through `profile.workers` workers,
/// closed-loop (each worker issues the next request as soon as the
/// previous completes).
///
/// `compute_per_request` is the calibrated request-processing work
/// (parsing, response formatting, syscall time) that accompanies the
/// allocator/pointer traffic.
pub fn run_server<D>(
    profile: &ServerProfile,
    requests: u64,
    compute_per_request: u32,
    hh: &HookedHeap<D>,
    seed: u64,
) -> ServerResult
where
    D: Detector + Send + Sync + ?Sized,
{
    run_server_opts(
        profile,
        requests,
        compute_per_request,
        hh,
        seed,
        &ServerOptions::default(),
    )
}

/// [`run_server`] with open-loop pacing and telemetry options.
pub fn run_server_opts<D>(
    profile: &ServerProfile,
    requests: u64,
    compute_per_request: u32,
    hh: &HookedHeap<D>,
    seed: u64,
    opts: &ServerOptions,
) -> ServerResult
where
    D: Detector + Send + Sync + ?Sized,
{
    // One histogram per request class plus the overall one; workers on
    // any thread record into per-thread slabs, merged exactly on
    // snapshot (see `dangsan_telemetry::hist`).
    let overall = Arc::new(Histogram::new());
    let class_hists: [Arc<Histogram>; 3] = [
        Arc::new(Histogram::new()),
        Arc::new(Histogram::new()),
        Arc::new(Histogram::new()),
    ];
    if let Some(hub) = &opts.hub {
        hub.register_histogram("server_latency_ns", &overall);
        for (name, h) in CLASS_NAMES.iter().zip(class_hists.iter()) {
            hub.register_histogram(&format!("server_latency_{name}_ns"), h);
        }
    }
    // Static content / caches loaded at startup.
    let mut static_blocks = Vec::new();
    let mut left = profile.static_bytes;
    while left > 0 {
        let chunk = left.min(1 << 20);
        static_blocks.push(hh.malloc(chunk).expect("static content").base);
        left -= chunk;
    }
    let next = AtomicU64::new(0);
    let churned = AtomicU64::new(0);
    let ns_per_req = opts.offered_rps.map(|rps| 1e9 / rps.max(1e-9));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..profile.workers {
            let hh = hh.clone();
            let next = &next;
            let churned = &churned;
            let overall = &overall;
            let class_hists = &class_hists;
            scope.spawn(move || {
                let mut th = hh.thread_handle();
                let mut rng = SmallRng::seed_from_u64(seed ^ ((w as u64) << 40));
                // Per-worker connection pool (retained allocations) and a
                // slab of pointer slots standing in for connection state.
                let slab = th.malloc(512 * 8).expect("worker slab");
                let mut pool: Vec<Addr> = Vec::new();
                let mut spin_acc = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests {
                        break;
                    }
                    let class = class_of(i, seed);
                    // Open loop: request `i` arrives at start + i/rate;
                    // wait for it if we are early, and measure from the
                    // scheduled arrival either way so queueing delay is
                    // part of the latency.
                    let sched_ns = ns_per_req.map(|step| (step * i as f64) as u64);
                    if let Some(sched) = sched_ns {
                        loop {
                            let now = start.elapsed().as_nanos() as u64;
                            if now >= sched {
                                break;
                            }
                            let behind = sched - now;
                            if behind > 200_000 {
                                std::thread::sleep(Duration::from_nanos(behind / 2));
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                    }
                    let req_start = Instant::now();
                    spin_acc ^= spin(compute_per_request, seed ^ w as u64);
                    if class == CLASS_CHURN && !pool.is_empty() {
                        // Session teardown: the connection's retained
                        // state is released wholesale, exercising the
                        // free/invalidate path in bursts.
                        for base in pool.drain(..) {
                            th.free(base).expect("churn free");
                        }
                        churned.fetch_add(1, Ordering::Relaxed);
                    }
                    // Parse + build the request/response object graph;
                    // static serving touches a third of the dynamic
                    // graph and retains nothing.
                    let (allocs, stores, retain) = match class {
                        CLASS_STATIC => (
                            (profile.allocs_per_request / 3).max(1),
                            profile.stores_per_request / 3,
                            false,
                        ),
                        _ => (profile.allocs_per_request, profile.stores_per_request, true),
                    };
                    let mut request_objs: Vec<(Addr, u64)> = Vec::new();
                    for _ in 0..allocs {
                        let size = rng.gen_range(64..512);
                        let a = th.malloc(size).expect("req alloc");
                        request_objs.push((a.base, size));
                    }
                    for i in 0..stores {
                        if request_objs.is_empty() {
                            break;
                        }
                        // Servers with connection pools (Apache) keep
                        // linking pool entries from fresh request state,
                        // so the pooled objects' logs grow for the whole
                        // run — the source of the 4.5x memory in §8.3.
                        let (t, ts) = if !pool.is_empty() && rng.gen_bool(0.5) {
                            (pool[rng.gen_range(0..pool.len())], 64)
                        } else {
                            request_objs[rng.gen_range(0..request_objs.len())]
                        };
                        // Connection state keeps pointers in a handful of
                        // fields per object, not spread over the slab.
                        let loc = slab.base + ((t / 64 + i % 8) % 512) * 8;
                        th.store_ptr(loc, t + rng.gen_range(0..ts)).expect("store");
                    }
                    // Respond, then tear the graph down; a fraction stays
                    // in the connection pool (Apache's behaviour).
                    for (base, size) in request_objs {
                        // Pools retain the small header-like allocations.
                        if retain
                            && size < 128
                            && rng.gen_bool((profile.retained_frac * 4.0).min(1.0))
                            && pool.len() < 100_000
                        {
                            pool.push(base);
                        } else {
                            th.free(base).expect("req free");
                        }
                    }
                    let lat = match sched_ns {
                        // Completion relative to the scheduled arrival.
                        Some(sched) => (start.elapsed().as_nanos() as u64).saturating_sub(sched),
                        None => req_start.elapsed().as_nanos() as u64,
                    };
                    overall.record(lat);
                    class_hists[class].record(lat);
                }
                std::hint::black_box(spin_acc);
                for base in pool {
                    th.free(base).expect("pool free");
                }
            });
        }
    });
    let elapsed = start.elapsed();
    for b in static_blocks {
        hh.free(b).expect("static free");
    }
    let snap = overall.snapshot();
    let classes = CLASS_NAMES
        .iter()
        .zip(class_hists.iter())
        .map(|(name, h)| {
            let s = h.snapshot();
            ClassLatency {
                class: name,
                count: s.count(),
                p50_ns: s.p50(),
                p99_ns: s.p99(),
                p999_ns: s.p999(),
                max_ns: s.max(),
            }
        })
        .collect();
    debug_assert_eq!(
        snap.count(),
        class_hists
            .iter()
            .map(|h| h.snapshot().count())
            .sum::<u64>(),
        "every request lands in exactly one class histogram"
    );
    ServerResult {
        name: profile.name.to_string(),
        detector: hh.detector().name().to_string(),
        requests,
        rps: requests as f64 / elapsed.as_secs_f64(),
        offered_rps: opts.offered_rps,
        p50_ns: snap.p50(),
        p99_ns: snap.p99(),
        p999_ns: snap.p999(),
        max_ns: snap.max(),
        classes,
        sessions_churned: churned.load(Ordering::Relaxed),
        heap_resident: hh.heap().resident_bytes(),
        metadata_bytes: hh.detector().metadata_bytes(),
        latency_hists: std::iter::once(("server_latency_ns".to_string(), overall))
            .chain(
                CLASS_NAMES
                    .iter()
                    .zip(class_hists)
                    .map(|(name, h)| (format!("server_latency_{name}_ns"), h)),
            )
            .collect(),
    }
}

/// Merges the per-class histograms of a result-producing run into one
/// snapshot — a convenience for harnesses that keep class histograms and
/// want overall percentiles without a second recording pass.
pub fn merged_snapshot(hists: &[Arc<Histogram>]) -> HistogramSnapshot {
    let mut merged = HistogramSnapshot::default();
    for h in hists {
        merged.merge(&h.snapshot());
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{shared_env, DetectorKind};
    use crate::profiles::SERVERS;
    use dangsan::Config;

    #[test]
    fn all_three_servers_serve_requests() {
        for p in SERVERS {
            let hh = shared_env(DetectorKind::DangSan(Config::default()));
            let r = run_server(p, 500, 0, &hh, 1);
            assert_eq!(r.requests, 500);
            assert!(r.rps > 0.0);
            assert!(r.p50_ns > 0, "median latency must be measured");
            assert!(r.p99_ns >= r.p50_ns, "percentiles out of order");
            assert!(r.p999_ns >= r.p99_ns, "percentiles out of order");
            assert!(r.max_ns >= r.p999_ns, "max below p999");
            let class_total: u64 = r.classes.iter().map(|c| c.count).sum();
            assert_eq!(class_total, 500, "every request lands in one class");
        }
    }

    #[test]
    fn class_mix_is_deterministic_and_shaped() {
        let counts = |seed| {
            let mut c = [0u64; 3];
            for i in 0..10_000 {
                c[class_of(i, seed)] += 1;
            }
            c
        };
        let a = counts(7);
        assert_eq!(a, counts(7), "same seed, same schedule");
        assert!(a[CLASS_STATIC] > a[CLASS_DYNAMIC], "static dominates");
        assert!(a[CLASS_DYNAMIC] > a[CLASS_CHURN], "churn is rare");
        assert!(a[CLASS_CHURN] > 0, "churn occurs");
        assert_ne!(a, counts(8), "different seed, different schedule");
    }

    #[test]
    fn churn_requests_tear_down_session_pools() {
        // Apache retains aggressively, so across 2000 requests some
        // churn request must find a non-empty pool to tear down.
        let hh = shared_env(DetectorKind::DangSan(Config::default()));
        let r = run_server(&SERVERS[0], 2000, 0, &hh, 5);
        assert!(r.sessions_churned > 0, "no session was ever churned");
    }

    #[test]
    fn open_loop_latency_includes_queueing_delay() {
        // Offered load far beyond capacity: scheduled arrivals run ahead
        // of completions, so scheduled-relative latency must dwarf the
        // closed-loop service time of the same workload.
        let p = &SERVERS[1];
        let hh = shared_env(DetectorKind::DangSan(Config::default()));
        let closed = run_server(p, 400, 0, &hh, 9);
        let hh = shared_env(DetectorKind::DangSan(Config::default()));
        let open = run_server_opts(
            p,
            400,
            0,
            &hh,
            9,
            &ServerOptions {
                offered_rps: Some(1e9),
                hub: None,
            },
        );
        assert_eq!(open.offered_rps, Some(1e9));
        assert!(
            open.p99_ns > closed.p50_ns,
            "saturating open-loop p99 {} must exceed closed-loop p50 {}",
            open.p99_ns,
            closed.p50_ns
        );
    }

    #[test]
    fn open_loop_paces_below_capacity() {
        // 200 requests at 10k rps should take ~20ms of wall time even
        // though the work itself is far cheaper.
        let p = &SERVERS[2];
        let hh = shared_env(DetectorKind::DangSan(Config::default()));
        let start = Instant::now();
        let r = run_server_opts(
            p,
            200,
            0,
            &hh,
            11,
            &ServerOptions {
                offered_rps: Some(10_000.0),
                hub: None,
            },
        );
        assert!(start.elapsed() >= Duration::from_millis(15), "unpaced");
        assert!(r.rps <= 15_000.0, "throughput capped by offered load");
    }

    #[test]
    fn apache_profile_tracks_most_per_request_state() {
        let apache = &SERVERS[0];
        let cherokee = &SERVERS[2];
        let run = |p| {
            let hh = shared_env(DetectorKind::DangSan(Config::default()));
            let r = run_server(p, 400, 0, &hh, 2);
            (r.metadata_bytes, r.heap_resident)
        };
        let (a_meta, a_res) = run(apache);
        let (c_meta, c_res) = run(cherokee);
        // Apache's retained pools + rich graphs mean far more tracked
        // state than Cherokee's near-static serving (4.5x vs 1.1x in §8.3).
        let a_ratio = (a_meta + a_res) as f64 / a_res as f64;
        let c_ratio = (c_meta + c_res) as f64 / c_res as f64;
        assert!(
            a_ratio > c_ratio,
            "apache {a_ratio:.2}x should exceed cherokee {c_ratio:.2}x"
        );
    }

    #[test]
    fn baseline_and_dangsan_serve_same_request_count() {
        let p = &SERVERS[1];
        let hb = shared_env(DetectorKind::Baseline);
        let rb = run_server(p, 300, 0, &hb, 3);
        let hd = shared_env(DetectorKind::DangSan(Config::default()));
        let rd = run_server(p, 300, 0, &hd, 3);
        assert_eq!(rb.requests, rd.requests);
        assert!(rd.metadata_bytes > rb.metadata_bytes);
    }

    #[test]
    fn hub_registration_feeds_the_time_series() {
        // shared_env type-erases the detector, so use a standalone hub;
        // the workload registers its histograms on whatever hub it is
        // handed, detector-attached or not.
        let hh = shared_env(DetectorKind::DangSan(Config::default()));
        let hub = dangsan::telemetry::MetricsHub::new();
        let r = run_server_opts(
            &SERVERS[1],
            300,
            0,
            &hh,
            4,
            &ServerOptions {
                offered_rps: None,
                hub: Some(Arc::clone(&hub)),
            },
        );
        assert_eq!(r.requests, 300);
        let samples = hub.collect();
        let find = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .value
        };
        assert_eq!(find("server_latency_ns_count"), 300);
        assert_eq!(find("server_latency_ns_p99"), r.p99_ns);
        assert_eq!(find("server_latency_ns_max"), r.max_ns);
        let class_total: u64 = CLASS_NAMES
            .iter()
            .map(|n| find(&format!("server_latency_{n}_ns_count")))
            .sum();
        assert_eq!(class_total, 300);
    }
}
