//! Machine-independent compute calibration.
//!
//! Figure 9's per-benchmark overhead is determined by each benchmark's
//! ratio of pointer-tracking work to ordinary compute. The absolute cost
//! of the simulated substrate differs from real hardware and from machine
//! to machine, so the harness measures three constants once — the cost of
//! a spin unit, of a baseline instrumented store, and of DangSan's extra
//! per-store work — and then chooses each benchmark's compute-per-store so
//! that the *DangSan* run lands on the paper's Figure 9 anchor. The other
//! detectors (FreeSentry, DangNULL, locked DangSan) run the identical
//! workload, so their relative positions are *emergent* from their
//! implementations, not calibrated.

use std::hint::black_box;
use std::time::Instant;

use crate::env::{local_env, DetectorKind};
use dangsan::Config;

/// Calibrated per-operation costs (nanoseconds).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// One spin unit (see [`spin`]).
    pub spin_ns: f64,
    /// One instrumented pointer store on the baseline (no detector).
    pub baseline_store_ns: f64,
    /// DangSan's additional cost per pointer store.
    pub dangsan_extra_ns: f64,
}

/// Busy-work: `units` rounds of xorshift, kept opaque to the optimizer.
#[inline]
pub fn spin(units: u32, seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..units {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    black_box(x)
}

fn measure_store_ns(kind: DetectorKind, iters: u64) -> f64 {
    let hh = local_env(kind);
    let obj = hh.malloc(256).unwrap();
    let slab = hh.malloc(64 * 8).unwrap();
    let start = Instant::now();
    for i in 0..iters {
        let loc = slab.base + (i % 64) * 8;
        hh.store_ptr(loc, obj.base + (i % 32) * 8).unwrap();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Measures the cost model. Takes a few tens of milliseconds.
pub fn calibrate() -> CostModel {
    // Warm up the CPU and code paths.
    let _ = measure_store_ns(DetectorKind::Baseline, 50_000);
    let spins = 2_000_000u64;
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..spins / 64 {
        acc ^= spin(64, i);
    }
    black_box(acc);
    let spin_ns = start.elapsed().as_nanos() as f64 / spins as f64;

    let baseline = measure_store_ns(DetectorKind::Baseline, 400_000);
    let dangsan = measure_store_ns(DetectorKind::DangSan(Config::default()), 400_000);
    CostModel {
        spin_ns: spin_ns.max(0.05),
        baseline_store_ns: baseline.max(1.0),
        dangsan_extra_ns: (dangsan - baseline).max(1.0),
    }
}

impl CostModel {
    /// Computes the spin units per store that make a DangSan run land on
    /// `target_overhead` (e.g. `1.41`).
    ///
    /// From `o = 1 + extra / (base + k·spin)`:
    /// `k = (extra / (o − 1) − base) / spin`.
    pub fn compute_units_for(&self, target_overhead: f64) -> u32 {
        let o = target_overhead.max(1.005);
        let k = (self.dangsan_extra_ns / (o - 1.0) - self.baseline_store_ns) / self.spin_ns;
        k.clamp(0.0, 2_000_000.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_depends_on_units_and_terminates() {
        let a = spin(10, 42);
        let b = spin(10, 42);
        assert_eq!(a, b, "deterministic");
        assert_ne!(spin(11, 42), a);
    }

    #[test]
    fn calibration_produces_positive_costs() {
        let cm = calibrate();
        assert!(cm.spin_ns > 0.0);
        assert!(cm.baseline_store_ns > 0.0);
        assert!(cm.dangsan_extra_ns > 0.0);
    }

    #[test]
    fn compute_units_is_monotone_in_target() {
        let cm = CostModel {
            spin_ns: 1.0,
            baseline_store_ns: 20.0,
            dangsan_extra_ns: 40.0,
        };
        let low = cm.compute_units_for(1.05);
        let high = cm.compute_units_for(2.0);
        assert!(low > high, "cheaper target needs more padding compute");
        // o=2 → k = (40/1 - 20)/1 = 20.
        assert_eq!(high, 20);
        // o=1.05 → k = (800 - 20) = 780 (± floating-point truncation).
        assert!((779..=780).contains(&low), "low = {low}");
    }
}
