//! Workloads reproducing the paper's evaluation (§8).
//!
//! SPEC CPU2006, PARSEC/SPLASH-2X and the web-server benchmarks are not
//! redistributable; each is replaced by a synthetic workload calibrated to
//! its published pointer-tracking profile (Table 1, Figures 9–12). See
//! `DESIGN.md` §2 for the substitution argument and [`profiles`] for the
//! per-benchmark data.
//!
//! * [`spec`] — single-threaded Table 1-shaped generators (Figures 9, 11);
//! * [`parsec`] — multithreaded sharing-pattern kernels (Figures 10, 12);
//! * [`server`] — the Apache/Nginx/Cherokee request loop (§8.2/§8.3);
//! * [`exploits`] — the §8.1 effectiveness scenarios;
//! * [`cost`] — machine-independent compute calibration;
//! * [`env`] — fresh experiment environments per detector kind.

pub mod cost;
pub mod env;
pub mod exploits;
pub mod parsec;
pub mod profiles;
pub mod server;
pub mod spec;

pub use cost::{calibrate, CostModel};
pub use env::{
    local_env, metrics_env_overrides, shared_env, site_policy_env_overrides, sweep_env_overrides,
    tagging_env_overrides, DetectorKind,
};
pub use profiles::ServerProfile;
pub use server::{run_server, run_server_opts, ClassLatency, ServerOptions, ServerResult};
pub use spec::{run_spec, RunResult};
