//! The metrics registry: pull-based gauges/counters plus the sampler.
//!
//! Subsystems register a *source* closure once (cold, behind a mutex);
//! nothing is ever pushed from a hot path — collection walks the
//! sources on demand, so with no collector running, a registered
//! subsystem pays nothing at all. Histograms register by name and are
//! flattened into `_count` / `_p50` / `_p99` / `_p999` / `_max` gauges
//! at collection time.
//!
//! The [`Sampler`] is a background thread collecting the hub every
//! `interval` into an in-memory JSONL time series (one object per
//! line, `ts_ms` first). The hub also renders a Prometheus-style text
//! exposition (`# TYPE` comments + `name value` lines). Both are plain
//! strings: harnesses decide what hits the filesystem.

use core::sync::atomic::{AtomicBool, Ordering};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::hist::Histogram;

/// How a sample should be read (and exported to Prometheus).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing total.
    Counter,
    /// Point-in-time level; may go down.
    Gauge,
}

/// One collected metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Metric name (`snake_case`, stable across releases).
    pub name: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// The value at collection time.
    pub value: u64,
}

/// The push target handed to source closures during a collection.
#[derive(Debug, Default)]
pub struct Collector {
    samples: Vec<Sample>,
}

impl Collector {
    /// Reports a gauge.
    pub fn gauge(&mut self, name: &str, value: u64) {
        self.samples.push(Sample {
            name: name.to_string(),
            kind: MetricKind::Gauge,
            value,
        });
    }

    /// Reports a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.samples.push(Sample {
            name: name.to_string(),
            kind: MetricKind::Counter,
            value,
        });
    }
}

type Source = Box<dyn Fn(&mut Collector) + Send + Sync>;

/// Ceiling on retained time-series lines: at the default 100 ms cadence
/// this is ~2.7 hours of history, and it bounds sampler memory on
/// long-running processes (oldest lines are dropped first).
const SERIES_CAP: usize = 100_000;

/// The metrics registry (see the module docs). Created by
/// `Config::metrics`-enabled detectors; harnesses reach it through
/// `DangSan::metrics`.
#[derive(Default)]
pub struct MetricsHub {
    sources: Mutex<Vec<Source>>,
    hists: Mutex<Vec<(String, Weak<Histogram>)>>,
    series: Mutex<VecDeque<String>>,
    dropped_lines: AtomicBool,
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> Arc<MetricsHub> {
        Arc::new(MetricsHub::default())
    }

    /// Registers a source closure, called on every collection. Sources
    /// should read their subsystem's counters/levels and push samples;
    /// they must not block on locks a hot path holds for long.
    pub fn register_source(&self, f: impl Fn(&mut Collector) + Send + Sync + 'static) {
        self.sources.lock().expect("not poisoned").push(Box::new(f));
    }

    /// Registers a histogram: each collection flattens it into
    /// `<name>_count/_p50/_p99/_p999/_max` gauges. The hub holds only a
    /// `Weak`; a dropped histogram silently leaves the export.
    pub fn register_histogram(&self, name: &str, h: &Arc<Histogram>) {
        self.hists
            .lock()
            .expect("not poisoned")
            .push((name.to_string(), Arc::downgrade(h)));
    }

    /// Collects every source and registered histogram into a flat
    /// sample list (stable order: sources in registration order, then
    /// histograms).
    pub fn collect(&self) -> Vec<Sample> {
        let mut c = Collector::default();
        {
            let sources = self.sources.lock().expect("not poisoned");
            for f in sources.iter() {
                f(&mut c);
            }
        }
        let hists = self.hists.lock().expect("not poisoned");
        for (name, h) in hists.iter() {
            if let Some(h) = h.upgrade() {
                let s = h.snapshot();
                c.gauge(&format!("{name}_count"), s.count());
                c.gauge(&format!("{name}_p50"), s.p50());
                c.gauge(&format!("{name}_p99"), s.p99());
                c.gauge(&format!("{name}_p999"), s.p999());
                c.gauge(&format!("{name}_max"), s.max());
            }
        }
        c.samples
    }

    /// One JSONL time-series line for the current state: a flat object,
    /// `ts_ms` (milliseconds since `epoch`) first, then every sample.
    /// Names are emitted as-is — they are crate-controlled identifiers,
    /// never user input, so no JSON escaping is needed.
    pub fn jsonl_line(&self, epoch: Instant) -> String {
        let ts_ms = epoch.elapsed().as_secs_f64() * 1e3;
        let mut line = format!("{{\"ts_ms\":{ts_ms:.3}");
        for s in self.collect() {
            line.push_str(&format!(",\"{}\":{}", s.name, s.value));
        }
        line.push('}');
        line
    }

    /// Prometheus-style text exposition of the current state.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for s in self.collect() {
            let kind = match s.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
            };
            out.push_str(&format!(
                "# TYPE {} {kind}\n{} {}\n",
                s.name, s.name, s.value
            ));
        }
        out
    }

    /// The sampler's accumulated JSONL lines, oldest first. When the
    /// [`SERIES_CAP`] ceiling dropped lines, the first line returned is
    /// a marker object (`{"dropped":true}`).
    pub fn series(&self) -> Vec<String> {
        let lines = self.series.lock().expect("not poisoned");
        if self.dropped_lines.load(Ordering::Relaxed) {
            let mut out = Vec::with_capacity(lines.len() + 1);
            out.push("{\"dropped\":true}".to_string());
            out.extend(lines.iter().cloned());
            out
        } else {
            lines.iter().cloned().collect()
        }
    }

    fn push_line(&self, line: String) {
        let mut series = self.series.lock().expect("not poisoned");
        if series.len() >= SERIES_CAP {
            series.pop_front();
            self.dropped_lines.store(true, Ordering::Relaxed);
        }
        series.push_back(line);
    }

    /// Spawns the sampler thread: one [`MetricsHub::jsonl_line`] per
    /// `interval` until the returned [`Sampler`] is stopped or dropped.
    /// A final line is always taken at stop, so even a short run's
    /// series is non-empty.
    pub fn start_sampler(self: &Arc<Self>, interval: Duration) -> Sampler {
        let hub = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let epoch = Instant::now();
            while !stop_flag.load(Ordering::Relaxed) {
                hub.push_line(hub.jsonl_line(epoch));
                // park_timeout wakes early on unpark (the stop path),
                // so shutdown never waits out a long interval.
                std::thread::park_timeout(interval);
            }
            hub.push_line(hub.jsonl_line(epoch));
        });
        Sampler {
            stop,
            handle: Some(handle),
        }
    }
}

/// Handle to a running sampler thread; stopping (or dropping) joins it.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Stops and joins the sampler (idempotent; also runs on drop).
    ///
    /// A source's transient `Weak` upgrade can make the sampler thread
    /// itself the one dropping the hub's owner — and therefore this
    /// `Sampler` (the detector's drop glue is the concrete case).
    /// Joining would then be a self-join deadlock, so the sampler
    /// thread detaches instead: the stop flag is already set, and the
    /// thread exits as soon as the in-flight collection returns.
    pub fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            handle.thread().unpark();
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::AtomicU64;

    #[test]
    fn sources_and_histograms_flatten_into_samples() {
        let hub = MetricsHub::new();
        let level = Arc::new(AtomicU64::new(42));
        let l = Arc::clone(&level);
        hub.register_source(move |c| {
            c.gauge("queue_depth", l.load(Ordering::Relaxed));
            c.counter("frees_total", 7);
        });
        let h = Arc::new(Histogram::new());
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        hub.register_histogram("lat_ns", &h);
        let samples = hub.collect();
        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(get("queue_depth").value, 42);
        assert_eq!(get("queue_depth").kind, MetricKind::Gauge);
        assert_eq!(get("frees_total").value, 7);
        assert_eq!(get("frees_total").kind, MetricKind::Counter);
        assert_eq!(get("lat_ns_count").value, 3);
        assert_eq!(get("lat_ns_max").value, 30);
        level.store(13, Ordering::Relaxed);
        assert_eq!(
            hub.collect().first().expect("sample").value,
            13,
            "collection is pull-based, not a cached push"
        );
    }

    #[test]
    fn dropped_histogram_leaves_the_export() {
        let hub = MetricsHub::new();
        let h = Arc::new(Histogram::new());
        hub.register_histogram("gone", &h);
        drop(h);
        assert!(hub.collect().is_empty());
    }

    #[test]
    fn exposition_formats_render() {
        let hub = MetricsHub::new();
        hub.register_source(|c| {
            c.gauge("depth", 3);
            c.counter("total", 9);
        });
        let prom = hub.prometheus();
        assert!(prom.contains("# TYPE depth gauge\ndepth 3\n"));
        assert!(prom.contains("# TYPE total counter\ntotal 9\n"));
        let line = hub.jsonl_line(Instant::now());
        assert!(line.starts_with("{\"ts_ms\":"));
        assert!(line.contains("\"depth\":3"));
        assert!(line.contains("\"total\":9"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn sampler_stop_on_its_own_thread_detaches_instead_of_self_joining() {
        // Mirrors the detector: an owner holds the Sampler, and a
        // source's transient Weak upgrade can make the sampler thread
        // the one running the owner's drop. Deterministically force
        // that interleaving: park the source while it holds a strong
        // ref, drop the external ref, then release the source — the
        // owner (and its Sampler) now drops on the sampler thread.
        // Before the self-id check in Sampler::stop this self-joined
        // and hung forever.
        struct Owner {
            _sampler: Mutex<Option<Sampler>>,
        }
        let hub = MetricsHub::new();
        let owner = Arc::new(Owner {
            _sampler: Mutex::new(None),
        });
        let in_source = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let weak = Arc::downgrade(&owner);
        let (entered, gate) = (Arc::clone(&in_source), Arc::clone(&release));
        hub.register_source(move |c| {
            if let Some(owner) = weak.upgrade() {
                entered.store(true, Ordering::SeqCst);
                while !gate.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                drop(owner);
            }
            c.gauge("alive", 1);
        });
        *owner._sampler.lock().expect("not poisoned") =
            Some(hub.start_sampler(Duration::from_millis(1)));
        while !in_source.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        drop(owner); // the sampler thread's upgrade is now the last ref
        release.store(true, Ordering::SeqCst);
        // The detached sampler takes its final line and exits; wait for
        // the series to settle rather than sleeping a fixed amount.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let series = hub.series();
            if series.last().is_some_and(|l| l.contains("\"alive\":1")) {
                break;
            }
            assert!(Instant::now() < deadline, "sampler never emitted");
            std::thread::yield_now();
        }
    }

    #[test]
    fn sampler_emits_a_series_and_stops_cleanly() {
        let hub = MetricsHub::new();
        hub.register_source(|c| c.gauge("v", 1));
        let mut sampler = hub.start_sampler(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(20));
        sampler.stop();
        let series = hub.series();
        assert!(series.len() >= 2, "expected several lines: {series:?}");
        for line in &series {
            assert!(line.contains("\"v\":1"), "bad line {line}");
        }
        // Idempotent stop + drop after stop are both fine.
        sampler.stop();
        drop(sampler);
    }
}
