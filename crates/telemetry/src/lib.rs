//! Live telemetry plane: what the detector is doing *right now*.
//!
//! The flight recorder (`dangsan-trace`) answers post-hoc questions —
//! which free produced this trap. This crate answers operational ones:
//! queue depths, tier populations, tail latency — the figures a
//! production deployment would graph. Three pieces:
//!
//! * [`Histogram`] — log-bucketed latency histograms recorded through
//!   per-thread single-writer slabs, the `dangsan::stats` discipline:
//!   the owning thread writes its slab with plain load + store (never an
//!   RMW, never a lock), slabs stay registered and readable until the
//!   thread retires them, and [`Histogram::snapshot`] sums retired
//!   totals plus every live slab under the registry mutex — so counts
//!   are exact for any reader ordered after the recording (a `join`, or
//!   `thread::scope` returning), with no dependence on TLS-destructor
//!   timing.
//! * [`MetricsHub`] — a pull-based registry of gauges and counters.
//!   Sources (the detector, the heap) register a closure once; nothing
//!   is pushed on the hot path, so a mutator never touches the hub at
//!   all. Collection, sampling and rendering are cold control-plane
//!   operations behind mutexes.
//! * [`Sampler`] — a background thread that collects the hub on a fixed
//!   cadence into an in-memory JSONL time series, plus a
//!   Prometheus-style text exposition dump on demand. Harnesses write
//!   the buffers to files; the crate itself never touches the
//!   filesystem and depends on nothing outside `std`.
//!
//! The ablation contract mirrors the flight recorder's: with
//! `Config::metrics` off no hub exists and a record site costs at most
//! one relaxed load and an untaken branch ([`Histogram::record`] on a
//! workload-owned histogram is the measurement itself and exists in
//! both modes); the pull design keeps the detector's malloc / store /
//! free paths free of telemetry sites entirely.

pub mod hist;
pub mod registry;

pub use hist::{bucket_high, bucket_index, bucket_low, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Collector, MetricKind, MetricsHub, Sample, Sampler};
