//! Log-bucketed histograms with single-writer per-thread slabs.
//!
//! Bucketing is HDR-style: values below [`SUB`] get one exact bucket
//! each; every power-of-two octave above that is split into [`SUB`]
//! linear sub-buckets, so the relative quantization error is bounded by
//! `1/SUB` (12.5%) across the whole `u64` range — fine-grained enough
//! for latency percentiles, coarse enough that a slab is a few KiB.
//!
//! Recording follows the `dangsan::stats` slab discipline exactly:
//!
//! * each (thread, histogram) pair owns one slab of `AtomicU64` buckets;
//!   only the owning thread writes, with plain load + store — zero RMWs,
//!   zero locks on the record path;
//! * slabs register with the histogram's shared registry; a snapshot
//!   sums the retired totals plus every live slab under the registry
//!   mutex, so totals are exact for any reader ordered after the
//!   recording (a `join` or `thread::scope` returning) without waiting
//!   on TLS destructors;
//! * thread exit retires the slab — counts move to the shared `retired`
//!   array under the same lock, so a concurrent snapshot sees them
//!   exactly once — and histogram ids are never reused, so a stale
//!   thread-local entry can never alias a new histogram.

use core::sync::atomic::{AtomicU64, Ordering};
use std::cell::RefCell;
use std::sync::{Arc, Mutex, Weak};

/// Bits of linear resolution inside one octave.
const SUB_BITS: u32 = 3;
/// Linear sub-buckets per octave (and the count of exact low buckets).
const SUB: usize = 1 << SUB_BITS;
/// Total buckets: [`SUB`] exact low values plus `SUB` sub-buckets for
/// each octave whose leading bit is at position `SUB_BITS..=63`.
pub const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// The bucket index recording `v` increments.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize;
    let shift = octave - SUB_BITS as usize;
    SUB + shift * SUB + ((v >> shift) & (SUB as u64 - 1)) as usize
}

/// The smallest value mapping to bucket `idx`.
pub fn bucket_low(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = SUB_BITS as usize + (idx - SUB) / SUB;
    let sub = ((idx - SUB) % SUB) as u64;
    (1u64 << octave) + (sub << (octave - SUB_BITS as usize))
}

/// The largest value mapping to bucket `idx` (inclusive).
pub fn bucket_high(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = SUB_BITS as usize + (idx - SUB) / SUB;
    bucket_low(idx) + ((1u64 << (octave - SUB_BITS as usize)) - 1)
}

/// One thread's buckets for one histogram. Only the owning thread
/// writes (plain load + store); any thread may read via the registry.
struct HistSlab {
    counts: [AtomicU64; BUCKETS],
    /// Exact maximum this thread recorded (single-writer, so the
    /// compare-and-store needs no RMW).
    max: AtomicU64,
}

impl HistSlab {
    fn new() -> HistSlab {
        HistSlab {
            counts: [const { AtomicU64::new(0) }; BUCKETS],
            max: AtomicU64::new(0),
        }
    }
}

/// Shared accumulation target: retired totals plus the live-slab
/// registry a snapshot walks.
struct HistShared {
    retired: [AtomicU64; BUCKETS],
    retired_max: AtomicU64,
    live: Mutex<Vec<Arc<HistSlab>>>,
}

/// Histogram identities are never reused (see the module docs).
static NEXT_HIST_ID: AtomicU64 = AtomicU64::new(1);

/// One thread-local binding: the slab this thread records into for
/// histogram `id`.
struct HistEntry {
    id: u64,
    slab: Arc<HistSlab>,
    target: Weak<HistShared>,
}

impl HistEntry {
    /// Hands the slab's counts to the shared registry (if it is still
    /// alive) and deregisters it. Holding the registry lock across the
    /// handover means a concurrent snapshot sees the counts exactly
    /// once — in `live` or in `retired`, never neither nor both.
    fn retire(&self) {
        if let Some(shared) = self.target.upgrade() {
            let mut live = shared.live.lock().expect("not poisoned");
            live.retain(|s| !Arc::ptr_eq(s, &self.slab));
            for i in 0..BUCKETS {
                let n = self.slab.counts[i].load(Ordering::Relaxed);
                if n > 0 {
                    shared.retired[i].fetch_add(n, Ordering::Relaxed);
                }
            }
            shared
                .retired_max
                .fetch_max(self.slab.max.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

/// The calling thread's bindings, one per histogram it has recorded
/// into. A thread records into a handful of histograms (one per request
/// class), so the linear scan is cheaper than any map — and unlike the
/// single-slot stats batch, switching histograms costs nothing.
struct HistBatch {
    entries: RefCell<Vec<HistEntry>>,
}

impl Drop for HistBatch {
    fn drop(&mut self) {
        // Thread exit: retire every binding so registries don't grow
        // with thread churn. Exactness never depends on this timing —
        // live slabs stay readable until retired.
        for e in self.entries.borrow().iter() {
            e.retire();
        }
    }
}

thread_local! {
    static HIST_BATCH: HistBatch = const {
        HistBatch {
            entries: RefCell::new(Vec::new()),
        }
    };
}

/// A concurrent log-bucketed histogram (see the module docs).
pub struct Histogram {
    shared: Arc<HistShared>,
    /// Never-reused identity for the thread-local bindings.
    id: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl core::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Histogram").field("id", &self.id).finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            shared: Arc::new(HistShared {
                retired: [const { AtomicU64::new(0) }; BUCKETS],
                retired_max: AtomicU64::new(0),
                live: Mutex::new(Vec::new()),
            }),
            id: NEXT_HIST_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Records one value: a thread-local slab lookup plus an uncontended
    /// load + store on a thread-private line. First record per (thread,
    /// histogram) registers a slab (cold, takes the registry lock once).
    pub fn record(&self, v: u64) {
        let idx = bucket_index(v);
        HIST_BATCH.with(|b| {
            let mut entries = b.entries.borrow_mut();
            let pos = match entries.iter().position(|e| e.id == self.id) {
                Some(pos) => pos,
                None => {
                    // Registration is the cold path: drop bindings whose
                    // histograms died so thread-churn-free programs that
                    // churn histograms stay bounded, then bind a slab.
                    entries.retain(|e| e.target.strong_count() > 0);
                    let slab = Arc::new(HistSlab::new());
                    self.shared
                        .live
                        .lock()
                        .expect("not poisoned")
                        .push(Arc::clone(&slab));
                    entries.push(HistEntry {
                        id: self.id,
                        slab,
                        target: Arc::downgrade(&self.shared),
                    });
                    entries.len() - 1
                }
            };
            let slab = &entries[pos].slab;
            let c = &slab.counts[idx];
            c.store(c.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
            if v > slab.max.load(Ordering::Relaxed) {
                slab.max.store(v, Ordering::Relaxed);
            }
        });
    }

    /// Sums retired totals and every live slab under the registry lock.
    /// Exact for any reader ordered after the recording (a `join`, or
    /// `thread::scope` returning).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; BUCKETS];
        let mut max;
        {
            let live = self.shared.live.lock().expect("not poisoned");
            max = self.shared.retired_max.load(Ordering::Relaxed);
            for (i, c) in counts.iter_mut().enumerate() {
                *c = self.shared.retired[i].load(Ordering::Relaxed);
                for slab in live.iter() {
                    *c += slab.counts[i].load(Ordering::Relaxed);
                }
            }
            for slab in live.iter() {
                max = max.max(slab.max.load(Ordering::Relaxed));
            }
        }
        let count = counts.iter().sum();
        HistogramSnapshot { counts, count, max }
    }
}

/// A point-in-time copy of a [`Histogram`]: plain data, mergeable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The exact largest value recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Adds `other`'s counts into this snapshot (exact: both are sums
    /// of disjoint slab sets when taken from distinct histograms).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank percentile (`pct` in 0..=100). Returns the upper
    /// bound of the bucket holding the ranked value, clamped to the
    /// exact recorded maximum — so the quantization error is bounded by
    /// the bucket width (≤ 12.5% relative) and `percentile(100)` is the
    /// exact max. 0 for an empty histogram.
    pub fn percentile(&self, pct: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((pct / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median (`percentile(50)`).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// 99.9th percentile — the tail the server gates watch.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_contiguous_and_monotone() {
        // Every bucket's low maps back to its own index, highs chain
        // into the next bucket's low, and indices never decrease.
        for idx in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_low(idx)), idx, "low of {idx}");
            assert_eq!(bucket_index(bucket_high(idx)), idx, "high of {idx}");
            if idx + 1 < BUCKETS {
                assert_eq!(bucket_high(idx) + 1, bucket_low(idx + 1), "gap at {idx}");
            }
        }
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
        for v in [0u64, 1, 7, 8, 9, 255, 256, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            assert!(bucket_low(idx) <= v && v <= bucket_high(idx), "v={v}");
        }
    }

    #[test]
    fn percentiles_are_ordered_and_max_is_exact() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 100);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max(), 100_000);
        let (p50, p99, p999) = (s.p50(), s.p99(), s.p999());
        assert!(p50 <= p99 && p99 <= p999 && p999 <= s.max());
        assert_eq!(s.percentile(100.0), 100_000, "p100 is the exact max");
        // Bucket quantization is bounded: p50 within 12.5% above 50_000.
        assert!((50_000..=57_000).contains(&p50), "p50={p50}");
    }

    #[test]
    fn counts_exact_across_scope_exit_and_join() {
        let h = Histogram::new();
        const THREADS: u64 = 4;
        const EACH: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..EACH {
                        h.record(t * 1_000_000 + i);
                    }
                });
            }
        });
        // Exact immediately after the scope returns, even though the
        // workers' TLS destructors may not have run yet.
        let s = h.snapshot();
        assert_eq!(s.count(), THREADS * EACH);
        assert_eq!(s.max(), (THREADS - 1) * 1_000_000 + EACH - 1);

        // And again after a plain spawn + join (destructors have run for
        // some workers by now; retired totals must hold their counts).
        let h2 = Arc::new(Histogram::new());
        let hh = Arc::clone(&h2);
        std::thread::spawn(move || {
            for i in 0..EACH {
                hh.record(i);
            }
        })
        .join()
        .expect("recorder");
        assert_eq!(h2.snapshot().count(), EACH);
    }

    #[test]
    fn merge_is_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        for i in 0..500u64 {
            a.record(i);
            b.record(i + 1_000_000);
        }
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max(), 1_000_499);
    }

    #[test]
    fn thread_switching_between_histograms_keeps_both_exact() {
        // Unlike the single-slot stats batch, alternating histograms on
        // one thread must not retire anything (each keeps its own slab).
        let a = Histogram::new();
        let b = Histogram::new();
        for i in 0..100u64 {
            a.record(i);
            b.record(i);
        }
        assert_eq!(a.snapshot().count(), 100);
        assert_eq!(b.snapshot().count(), 100);
    }

    #[test]
    fn dropped_histogram_bindings_are_pruned() {
        // Recording into a long-dead histogram's id slot must not leak:
        // the next registration prunes bindings whose target died.
        for _ in 0..64 {
            let h = Histogram::new();
            h.record(7);
            drop(h);
        }
        let h = Histogram::new();
        h.record(7);
        assert_eq!(h.snapshot().count(), 1);
        HIST_BATCH.with(|b| {
            assert!(
                b.entries.borrow().len() <= 2,
                "dead bindings must be pruned"
            );
        });
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p999(), 0);
    }
}
