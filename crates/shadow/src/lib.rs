//! Variable-compression-ratio memory shadowing — the *pointer-to-object
//! mapper* of DangSan (paper §4.3, Figure 5).
//!
//! DangSan must map an arbitrary (interior) pointer to the metadata of the
//! object it points into, on every instrumented pointer store. Hash tables
//! cannot answer range queries and trees degrade as the heap grows, so the
//! paper uses memory shadowing. Because DangSan needs a full 8-byte
//! metadata pointer per object, a *fixed* compression ratio would explode
//! either memory (fine-grained shadow) or fragmentation (coarse alignment).
//! The solution, taken from METAlloc, is a **metapagetable**:
//!
//! * level 1: one 8-byte entry per 4 KiB page of program memory. Seven
//!   bytes hold a pointer to that page's metadata array, one byte holds the
//!   page's *compression shift*;
//! * level 2: the per-page metadata array, with one 8-byte entry per
//!   `2^shift` bytes of the page, each pointing at the metadata of the
//!   object occupying those bytes.
//!
//! A lookup is two dependent loads:
//! `meta = *(entry.base + ((addr & 0xFFF) >> entry.shift) * 8)`.
//!
//! The allocator guarantees every object in a span lies at a multiple of
//! the span's stride, and `2^shift` divides the stride, so each slot
//! belongs to exactly one object. Large spans use `shift = 12` (one entry
//! per page) — the *variable* ratio that keeps big allocations cheap to
//! register.
//!
//! Entries store an opaque `u64` metadata value (the detector stores a
//! pointer to its per-object record). Zero means "no object".

use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::cell::Cell;
use std::ptr;

use dangsan_vmem::{Addr, HEAP_BASE, HEAP_SIZE, PAGE_SHIFT, PAGE_SIZE};

const FANOUT: usize = 1 << 12;
const L1_COUNT: usize = (HEAP_SIZE >> PAGE_SHIFT) as usize / FANOUT;

/// Entries in the per-thread `ptr2obj` translation cache (power of two).
const P2O_SLOTS: usize = 64;

/// One cached (heap page → packed metapagetable entry) translation.
///
/// Validity is a single stamp compare: stamps come from a global
/// never-reused counter, and a table takes a fresh stamp on every
/// `clear_object`, so a slot whose stamp equals the table's *current*
/// stamp was filled by this very table with no object clear since. Leaf
/// entries are written exactly once by [`MetaPageTable::register_span`]
/// (CAS from zero, "spans never change class") and freed only on drop, so
/// a cached packed entry for a live table can never dangle; the stamp
/// check is defence in depth that also gives `clear_object` a whole-cache
/// flush, keeping the cache's observable behaviour identical to the
/// uncached walk even if that invariant ever weakens.
#[derive(Clone, Copy)]
struct P2oSlot {
    /// The filling table's `cache_stamp` at fill time; 0 is never issued.
    stamp: u64,
    /// Global heap page index the entry translates.
    page: u64,
    /// The packed (array pointer | shift) leaf entry.
    entry: u64,
}

impl P2oSlot {
    const EMPTY: P2oSlot = P2oSlot {
        stamp: 0,
        page: 0,
        entry: 0,
    };
}

struct ThreadP2o {
    slots: [Cell<P2oSlot>; P2O_SLOTS],
    pending_stamp: Cell<u64>,
    pending_hits: Cell<u64>,
}

/// Hits are batched per thread and flushed to the table's counter after
/// this many (and on every miss), keeping a shared `fetch_add` off the
/// instrumented-store fast path.
const HIT_FLUSH_EVERY: u64 = 64;

thread_local! {
    static P2O: ThreadP2o = const {
        ThreadP2o {
            slots: [const { Cell::new(P2oSlot::EMPTY) }; P2O_SLOTS],
            pending_stamp: Cell::new(0),
            pending_hits: Cell::new(0),
        }
    };
}

/// Stamps are handed out once and never reused (across all tables), so a
/// stale thread-local entry — from a dropped table, another table, or this
/// table before a `clear_object` — can never match.
static NEXT_P2O_STAMP: AtomicU64 = AtomicU64::new(1);

fn fresh_p2o_stamp() -> u64 {
    NEXT_P2O_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// Hit/miss counters for a table's per-thread `ptr2obj` caches (see
/// [`MetaPageTable::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct P2oCacheStats {
    /// Lookups whose leaf entry came from the calling threads' caches.
    pub hits: u64,
    /// Lookups that walked the two metapagetable levels.
    pub misses: u64,
}

/// Packs a metadata-array pointer (≤ 56 bits on every supported platform)
/// and a shift into one metapagetable entry, exactly as the paper's Figure 5
/// packs "seven bytes of pointer, one byte of compression ratio".
fn pack_entry(array: *mut AtomicU64, shift: u32) -> u64 {
    let p = array as u64;
    debug_assert_eq!(p >> 56, 0, "host pointers exceed 56 bits");
    p | ((shift as u64) << 56)
}

fn unpack_entry(entry: u64) -> (*mut AtomicU64, u32) {
    (
        (entry & ((1 << 56) - 1)) as *mut AtomicU64,
        (entry >> 56) as u32,
    )
}

struct Leaf {
    /// One packed entry per page; 0 = page not registered.
    entries: [AtomicU64; FANOUT],
}

/// The metapagetable covering the simulated heap.
///
/// Thread-safe and lock-free: leaves and metadata arrays are installed with
/// CAS and retired only on drop. Metadata arrays are allocated once per
/// span and reused across the allocator's object reuse, mirroring how the
/// real implementation piggybacks on tcmalloc's span lifetime.
pub struct MetaPageTable {
    l1: Box<[AtomicPtr<Leaf>]>,
    /// Host bytes spent on leaves + metadata arrays (for Figure 11/12).
    shadow_bytes: AtomicU64,
    /// This table's current cache validity stamp (see [`P2oSlot`]):
    /// globally unique, replaced on every `clear_object`, which flushes
    /// all cached translations at once.
    cache_stamp: AtomicU64,
    /// Runtime kill switch used by the hot-path benchmarks.
    cache_enabled: AtomicBool,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

// SAFETY: all shared state is accessed through atomics; raw pointers are
// installed via CAS, never mutated afterwards, and freed only in `Drop`.
unsafe impl Send for MetaPageTable {}
// SAFETY: as above.
unsafe impl Sync for MetaPageTable {}

impl Default for MetaPageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl MetaPageTable {
    /// Creates an empty metapagetable.
    pub fn new() -> Self {
        MetaPageTable {
            l1: (0..L1_COUNT)
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect(),
            shadow_bytes: AtomicU64::new(0),
            cache_stamp: AtomicU64::new(fresh_p2o_stamp()),
            cache_enabled: AtomicBool::new(true),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    fn page_index(addr: Addr) -> Option<usize> {
        if !(HEAP_BASE..HEAP_BASE + HEAP_SIZE).contains(&addr) {
            return None;
        }
        Some(((addr - HEAP_BASE) >> PAGE_SHIFT) as usize)
    }

    fn leaf(&self, idx: usize, create: bool) -> Option<&Leaf> {
        let slot = &self.l1[idx];
        let mut cur = slot.load(Ordering::Acquire);
        if cur.is_null() {
            if !create {
                return None;
            }
            // SAFETY: a `Leaf` is an all-atomic struct for which zeroed
            // memory is a valid value; allocated with its own layout.
            let fresh = unsafe {
                let layout = std::alloc::Layout::new::<Leaf>();
                let raw = std::alloc::alloc_zeroed(layout) as *mut Leaf;
                if raw.is_null() {
                    std::alloc::handle_alloc_error(layout);
                }
                raw
            };
            match slot.compare_exchange(ptr::null_mut(), fresh, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    self.shadow_bytes
                        .fetch_add(core::mem::size_of::<Leaf>() as u64, Ordering::Relaxed);
                    cur = fresh;
                }
                Err(winner) => {
                    // SAFETY: `fresh` lost the race and was never shared.
                    unsafe { drop(Box::from_raw(fresh)) };
                    cur = winner;
                }
            }
        }
        // SAFETY: non-null leaves are valid for the table's lifetime.
        Some(unsafe { &*cur })
    }

    /// Registers a span's pages with compression `shift`, allocating each
    /// page's metadata array if not already present. Idempotent: pages that
    /// already carry an array are left untouched (spans never change class,
    /// so the shift never changes).
    pub fn register_span(&self, span_start: Addr, span_pages: u64, shift: u32) {
        debug_assert_eq!(span_start % PAGE_SIZE, 0);
        debug_assert!(shift <= 12);
        for p in 0..span_pages {
            let page_addr = span_start + p * PAGE_SIZE;
            let idx = Self::page_index(page_addr).expect("span inside heap");
            let leaf = self.leaf(idx / FANOUT, true).expect("created");
            let slot = &leaf.entries[idx % FANOUT];
            if slot.load(Ordering::Acquire) != 0 {
                continue;
            }
            let slots = (PAGE_SIZE >> shift) as usize;
            let array: Box<[AtomicU64]> = (0..slots).map(|_| AtomicU64::new(0)).collect();
            let raw = Box::into_raw(array) as *mut AtomicU64;
            let packed = pack_entry(raw, shift);
            match slot.compare_exchange(0, packed, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    self.shadow_bytes
                        .fetch_add(slots as u64 * 8, Ordering::Relaxed);
                }
                Err(_) => {
                    // Another thread registered the page concurrently.
                    // SAFETY: `raw` was just created from a box of length
                    // `slots` and never shared.
                    unsafe {
                        drop(Box::from_raw(ptr::slice_from_raw_parts_mut(raw, slots)));
                    }
                }
            }
        }
    }

    /// `createobj` (paper §4.3): points every shadow slot covered by
    /// `[base, base + len)` at `meta`. The span must have been registered.
    pub fn set_object(&self, base: Addr, len: u64, meta: u64) {
        let mut addr = base;
        let end = base + len.max(1);
        while addr < end {
            let idx = Self::page_index(addr).expect("object inside heap");
            let leaf = self.leaf(idx / FANOUT, false).expect("span registered");
            let entry = leaf.entries[idx % FANOUT].load(Ordering::Acquire);
            debug_assert_ne!(entry, 0, "page not registered");
            let (array, shift) = unpack_entry(entry);
            let page_base = addr & !(PAGE_SIZE - 1);
            let page_end = page_base + PAGE_SIZE;
            let first_slot = ((addr - page_base) >> shift) as usize;
            let last_byte = end.min(page_end) - 1;
            let last_slot = ((last_byte - page_base) >> shift) as usize;
            for s in first_slot..=last_slot {
                // SAFETY: `array` points at a live metadata array of
                // `PAGE_SIZE >> shift` entries; `s` is below that bound by
                // construction.
                unsafe { (*array.add(s)).store(meta, Ordering::Release) };
            }
            addr = page_end;
        }
    }

    /// Clears the object mapping for `[base, base + len)` (called on free).
    pub fn clear_object(&self, base: Addr, len: u64) {
        // Flush every thread's cached translations before the slots are
        // zeroed, so a cache filled before this free cannot be mistaken
        // for one filled after a later reuse of the same pages.
        self.cache_stamp.store(fresh_p2o_stamp(), Ordering::Release);
        self.set_object(base, len, 0);
    }

    /// `ptr2obj` (paper §4.3, Figure 5): maps any interior pointer to its
    /// object's metadata value, or `None`.
    ///
    /// The uncached walk is two dependent loads (leaf pointer, packed
    /// entry) plus the metadata-array load. A per-thread direct-mapped
    /// cache memoizes the first two; the array load always happens, which
    /// is what keeps pages holding many small objects — and object
    /// clears — exactly as precise as the full walk.
    #[inline]
    pub fn lookup(&self, addr: Addr) -> Option<u64> {
        let idx = Self::page_index(addr)?;
        let entry = self.entry_for_page(idx)?;
        let (array, shift) = unpack_entry(entry);
        let slot = ((addr & (PAGE_SIZE - 1)) >> shift) as usize;
        // SAFETY: the array has `PAGE_SIZE >> shift` slots and
        // `addr & 0xFFF >> shift` is below that bound.
        let meta = unsafe { (*array.add(slot)).load(Ordering::Acquire) };
        (meta != 0).then_some(meta)
    }

    /// Resolves the packed leaf entry for global heap page `idx`, consulting
    /// the calling thread's cache first.
    #[inline]
    fn entry_for_page(&self, idx: usize) -> Option<u64> {
        if !self.cache_enabled.load(Ordering::Relaxed) {
            return self.entry_walk(idx);
        }
        let slot_idx = idx & (P2O_SLOTS - 1);
        P2O.with(|cache| {
            let slot = cache.slots[slot_idx].get();
            let stamp = self.cache_stamp.load(Ordering::Acquire);
            if slot.stamp == stamp && slot.page == idx as u64 {
                self.note_cache_hit(cache, stamp);
                return Some(slot.entry);
            }
            self.flush_pending_hits(cache);
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
            let entry = self.entry_walk(idx)?;
            // Unregistered pages (None) are never cached: registration
            // must become visible on the very next lookup.
            cache.slots[slot_idx].set(P2oSlot {
                stamp,
                page: idx as u64,
                entry,
            });
            Some(entry)
        })
    }

    /// The uncached two-level walk.
    #[inline]
    fn entry_walk(&self, idx: usize) -> Option<u64> {
        let leaf = self.leaf(idx / FANOUT, false)?;
        let entry = leaf.entries[idx % FANOUT].load(Ordering::Acquire);
        (entry != 0).then_some(entry)
    }

    #[inline]
    fn note_cache_hit(&self, cache: &ThreadP2o, stamp: u64) {
        if cache.pending_stamp.get() != stamp {
            cache.pending_stamp.set(stamp);
            cache.pending_hits.set(0);
        }
        let n = cache.pending_hits.get() + 1;
        if n >= HIT_FLUSH_EVERY {
            self.cache_hits.fetch_add(n, Ordering::Relaxed);
            cache.pending_hits.set(0);
        } else {
            cache.pending_hits.set(n);
        }
    }

    fn flush_pending_hits(&self, cache: &ThreadP2o) {
        if cache.pending_stamp.get() == self.cache_stamp.load(Ordering::Acquire) {
            let n = cache.pending_hits.get();
            if n > 0 {
                self.cache_hits.fetch_add(n, Ordering::Relaxed);
                cache.pending_hits.set(0);
            }
        }
    }

    /// `ptr2obj`-cache hit/miss counters for this table.
    ///
    /// The calling thread's pending hit batch is flushed first, so
    /// single-threaded counts are exact; concurrent threads may each lag
    /// by one unflushed batch.
    pub fn cache_stats(&self) -> P2oCacheStats {
        P2O.with(|cache| self.flush_pending_hits(cache));
        P2oCacheStats {
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Enables or disables the per-thread `ptr2obj` cache at runtime (it
    /// starts enabled). Behaviour is identical either way; the hot-path
    /// benchmarks use this to measure both configurations in one process.
    pub fn set_cache_enabled(&self, on: bool) {
        self.cache_enabled.store(on, Ordering::Relaxed);
    }

    /// Host bytes consumed by the shadow structures.
    pub fn shadow_bytes(&self) -> u64 {
        self.shadow_bytes.load(Ordering::Relaxed)
    }
}

impl Drop for MetaPageTable {
    fn drop(&mut self) {
        for slot in self.l1.iter() {
            let leaf = slot.swap(ptr::null_mut(), Ordering::AcqRel);
            if leaf.is_null() {
                continue;
            }
            // SAFETY: exclusive access in drop; leaves own their arrays.
            let leaf = unsafe { Box::from_raw(leaf) };
            for e in leaf.entries.iter() {
                let entry = e.swap(0, Ordering::AcqRel);
                if entry == 0 {
                    continue;
                }
                let (array, shift) = unpack_entry(entry);
                let slots = (PAGE_SIZE >> shift) as usize;
                // SAFETY: arrays were created by `Box::into_raw` with
                // exactly `slots` elements and are freed exactly once here.
                unsafe {
                    drop(Box::from_raw(ptr::slice_from_raw_parts_mut(array, slots)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_on_empty_table_is_none() {
        let t = MetaPageTable::new();
        assert_eq!(t.lookup(HEAP_BASE), None);
        assert_eq!(t.lookup(HEAP_BASE + 123), None);
        assert_eq!(t.lookup(0x1000), None); // outside heap
    }

    #[test]
    fn set_and_lookup_small_object() {
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, 1, 5); // 32-byte slots
        t.set_object(HEAP_BASE + 64, 32, 0xABCD);
        assert_eq!(t.lookup(HEAP_BASE + 64), Some(0xABCD));
        assert_eq!(t.lookup(HEAP_BASE + 95), Some(0xABCD));
        assert_eq!(t.lookup(HEAP_BASE + 63), None);
        assert_eq!(t.lookup(HEAP_BASE + 96), None);
    }

    #[test]
    fn object_spanning_pages() {
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, 4, 12); // large span: one slot per page
        t.set_object(HEAP_BASE, 4 * PAGE_SIZE, 7);
        for off in [0u64, 1, PAGE_SIZE, 2 * PAGE_SIZE + 77, 4 * PAGE_SIZE - 1] {
            assert_eq!(t.lookup(HEAP_BASE + off), Some(7), "offset {off}");
        }
        assert_eq!(t.lookup(HEAP_BASE + 4 * PAGE_SIZE), None);
    }

    #[test]
    fn clear_removes_mapping() {
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, 1, 4);
        t.set_object(HEAP_BASE + 48, 48, 1);
        t.clear_object(HEAP_BASE + 48, 48);
        assert_eq!(t.lookup(HEAP_BASE + 48), None);
    }

    #[test]
    fn neighbouring_objects_do_not_bleed() {
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, 1, 4); // 16-byte slots, e.g. stride 48
        t.set_object(HEAP_BASE, 48, 1);
        t.set_object(HEAP_BASE + 48, 48, 2);
        assert_eq!(t.lookup(HEAP_BASE + 47), Some(1));
        assert_eq!(t.lookup(HEAP_BASE + 48), Some(2));
        t.clear_object(HEAP_BASE, 48);
        assert_eq!(t.lookup(HEAP_BASE), None);
        assert_eq!(t.lookup(HEAP_BASE + 48), Some(2));
    }

    #[test]
    fn register_is_idempotent_and_accounts_bytes() {
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, 2, 3);
        let bytes = t.shadow_bytes();
        assert!(bytes >= 2 * (PAGE_SIZE >> 3) * 8);
        t.register_span(HEAP_BASE, 2, 3);
        assert_eq!(t.shadow_bytes(), bytes, "re-registration allocates nothing");
    }

    #[test]
    fn entry_packing_roundtrip() {
        let array = Box::into_raw(
            (0..4)
                .map(|_| AtomicU64::new(0))
                .collect::<Box<[AtomicU64]>>(),
        ) as *mut AtomicU64;
        let packed = pack_entry(array, 9);
        let (p, s) = unpack_entry(packed);
        assert_eq!(p, array);
        assert_eq!(s, 9);
        // SAFETY: reclaim the test allocation (4 entries).
        unsafe { drop(Box::from_raw(ptr::slice_from_raw_parts_mut(array, 4))) };
    }

    #[test]
    fn concurrent_registration_and_lookup() {
        use std::sync::Arc;
        let t = Arc::new(MetaPageTable::new());
        let mut handles = Vec::new();
        for th in 0..8u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let span = HEAP_BASE + th * 4 * PAGE_SIZE;
                t.register_span(span, 4, 6);
                for i in 0..64u64 {
                    t.set_object(span + i * 256, 256, th * 100 + i + 1);
                }
                for i in 0..64u64 {
                    assert_eq!(t.lookup(span + i * 256 + 128), Some(th * 100 + i + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn warm_cache_resolves_recycled_page_to_new_object() {
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, 1, 6); // 64-byte slots
        t.set_object(HEAP_BASE, 64, 0x0_1D1);
        // Warm the thread-local cache on this page.
        for _ in 0..10 {
            assert_eq!(t.lookup(HEAP_BASE + 8), Some(0x0_1D1));
        }
        // Free the object and recycle its slots for a new one, as the
        // allocator does when a span's object is reused.
        t.clear_object(HEAP_BASE, 64);
        assert_eq!(t.lookup(HEAP_BASE + 8), None, "freed object resolves");
        t.set_object(HEAP_BASE, 64, 0x0_2E2);
        // A still-warm cache must yield the NEW object's metadata.
        assert_eq!(t.lookup(HEAP_BASE + 8), Some(0x0_2E2));
        assert_eq!(t.lookup(HEAP_BASE + 63), Some(0x0_2E2));
    }

    #[test]
    fn cache_hits_accumulate_and_disable_works() {
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, 1, 4);
        t.set_object(HEAP_BASE, 16, 9);
        for _ in 0..1000 {
            assert_eq!(t.lookup(HEAP_BASE), Some(9));
        }
        let s = t.cache_stats();
        assert!(s.hits >= 990, "repeated lookups should hit: {s:?}");
        assert!(s.misses >= 1);
        t.set_cache_enabled(false);
        for _ in 0..100 {
            assert_eq!(t.lookup(HEAP_BASE), Some(9));
        }
        assert_eq!(t.cache_stats(), s, "disabled cache counts nothing");
    }

    #[test]
    fn cache_entries_do_not_leak_across_tables() {
        let a = MetaPageTable::new();
        let b = MetaPageTable::new();
        a.register_span(HEAP_BASE, 1, 4);
        a.set_object(HEAP_BASE, 16, 1);
        assert_eq!(a.lookup(HEAP_BASE), Some(1)); // warm A
        assert_eq!(b.lookup(HEAP_BASE), None, "B has nothing registered");
        b.register_span(HEAP_BASE, 1, 12);
        b.set_object(HEAP_BASE, 16, 2);
        assert_eq!(a.lookup(HEAP_BASE), Some(1));
        assert_eq!(b.lookup(HEAP_BASE), Some(2));
    }

    #[test]
    fn racing_register_same_span_is_safe() {
        use std::sync::Arc;
        let t = Arc::new(MetaPageTable::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                t.register_span(HEAP_BASE, 8, 4);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        t.set_object(HEAP_BASE + 16, 16, 5);
        assert_eq!(t.lookup(HEAP_BASE + 16), Some(5));
    }
}
