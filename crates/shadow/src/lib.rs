//! Variable-compression-ratio memory shadowing — the *pointer-to-object
//! mapper* of DangSan (paper §4.3, Figure 5).
//!
//! DangSan must map an arbitrary (interior) pointer to the metadata of the
//! object it points into, on every instrumented pointer store. Hash tables
//! cannot answer range queries and trees degrade as the heap grows, so the
//! paper uses memory shadowing. Because DangSan needs a full 8-byte
//! metadata pointer per object, a *fixed* compression ratio would explode
//! either memory (fine-grained shadow) or fragmentation (coarse alignment).
//! The solution, taken from METAlloc, is a **metapagetable**:
//!
//! * level 1: one 8-byte entry per 4 KiB page of program memory. Seven
//!   bytes hold a pointer to that page's metadata array, one byte holds the
//!   page's *compression shift*;
//! * level 2: the per-page metadata array, with one 8-byte entry per
//!   `2^shift` bytes of the page, each pointing at the metadata of the
//!   object occupying those bytes.
//!
//! A lookup is two dependent loads:
//! `meta = *(entry.base + ((addr & 0xFFF) >> entry.shift) * 8)`.
//!
//! The allocator guarantees every object in a span lies at a multiple of
//! the span's stride, and `2^shift` divides the stride, so each slot
//! belongs to exactly one object. Large spans use `shift = 12` (one entry
//! per page) — the *variable* ratio that keeps big allocations cheap to
//! register.
//!
//! Entries store an opaque `u64` metadata value (the detector stores a
//! pointer to its per-object record). Zero means "no object".

use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::cell::Cell;
use std::ptr;
use std::sync::Arc;

use dangsan_trace::{EventCode, Trace, TraceLevel, Tracer};
use dangsan_vmem::{Addr, HEAP_BASE, HEAP_SIZE, PAGE_SHIFT, PAGE_SIZE};

const FANOUT: usize = 1 << 12;
const L1_COUNT: usize = (HEAP_SIZE >> PAGE_SHIFT) as usize / FANOUT;

/// Entries in the per-thread `ptr2obj` translation cache (power of two).
const P2O_SLOTS: usize = 64;

/// One cached (heap page → packed metapagetable entry) translation.
///
/// Validity is a *single* u64 compare: the key packs the filling table's
/// never-reused identity (upper 40 bits) with the heap page index (lower
/// 24 bits — the 64 GiB heap has exactly 2^24 pages), so one equality
/// test proves both "this very table" and "this very page" at once. No
/// generation is needed: leaf entries are written exactly once by
/// [`MetaPageTable::register_span`] (CAS from zero, "spans never change
/// class") and freed only on drop, so a cached packed entry for a live
/// table — which `&self` guarantees — is immutable and can never dangle.
/// Object churn (`set_object`/`clear_object`) mutates the metadata
/// *array* the entry points at, which every lookup re-reads, so cached
/// translations stay exactly as precise as the full walk without any
/// flush on free.
#[derive(Clone, Copy)]
struct P2oSlot {
    /// `table identity << 24 | page index`; identities start at 1, so a
    /// zeroed slot (key 0) can never match.
    key: u64,
    /// The packed (array pointer | shift) leaf entry.
    entry: u64,
}

impl P2oSlot {
    const EMPTY: P2oSlot = P2oSlot { key: 0, entry: 0 };
}

struct ThreadP2o {
    slots: [Cell<P2oSlot>; P2O_SLOTS],
    /// Hit-batch *countdown*: hits remaining before the batch flushes.
    /// Counting down instead of up lets the hit path be load / decrement /
    /// branch-if-zero / store — no compare against a limit, and no
    /// attribution check at all (that waits until flush time, which is
    /// rare). Starts full.
    hits_left: Cell<u64>,
    /// Pre-shifted identity of the table the current batch is attributed
    /// to. Read and written only on flush and miss, never on the hit path;
    /// in the single-live-table steady state every process has, the
    /// attribution is exact (see [`MetaPageTable::cache_stats`]).
    batch_owner: Cell<u64>,
}

/// Hits are batched per thread and flushed to the owning table's counter
/// after this many (and on every miss), keeping a shared `fetch_add` off
/// the instrumented-store fast path.
const HIT_FLUSH_EVERY: u64 = 64;

thread_local! {
    static P2O: ThreadP2o = const {
        ThreadP2o {
            slots: [const { Cell::new(P2oSlot::EMPTY) }; P2O_SLOTS],
            hits_left: Cell::new(HIT_FLUSH_EVERY),
            batch_owner: Cell::new(0),
        }
    };
}

/// Table identities are handed out once and never reused, so a stale
/// thread-local entry — from a dropped table or another live one — can
/// never match a key built from a different table's identity.
static NEXT_TABLE_IDENTITY: AtomicU64 = AtomicU64::new(1);

/// Returns a fresh identity, pre-shifted into the upper bits of the
/// packed cache key (see [`P2oSlot`]).
fn fresh_table_identity() -> u64 {
    let id = NEXT_TABLE_IDENTITY.fetch_add(1, Ordering::Relaxed);
    debug_assert!(id < 1 << 40, "table identities exhausted");
    id << 24
}

/// Hit/miss counters for a table's per-thread `ptr2obj` caches (see
/// [`MetaPageTable::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct P2oCacheStats {
    /// Lookups whose leaf entry came from the calling threads' caches.
    pub hits: u64,
    /// Lookups that walked the two metapagetable levels.
    pub misses: u64,
}

/// Packs a metadata-array pointer (≤ 56 bits on every supported platform)
/// and a shift into one metapagetable entry, exactly as the paper's Figure 5
/// packs "seven bytes of pointer, one byte of compression ratio".
fn pack_entry(array: *mut AtomicU64, shift: u32) -> u64 {
    let p = array as u64;
    debug_assert_eq!(p >> 56, 0, "host pointers exceed 56 bits");
    p | ((shift as u64) << 56)
}

fn unpack_entry(entry: u64) -> (*mut AtomicU64, u32) {
    (
        (entry & ((1 << 56) - 1)) as *mut AtomicU64,
        (entry >> 56) as u32,
    )
}

struct Leaf {
    /// One packed entry per page; 0 = page not registered.
    entries: [AtomicU64; FANOUT],
}

/// The metapagetable covering the simulated heap.
///
/// Thread-safe and lock-free: leaves and metadata arrays are installed with
/// CAS and retired only on drop. Metadata arrays are allocated once per
/// span and reused across the allocator's object reuse, mirroring how the
/// real implementation piggybacks on tcmalloc's span lifetime.
pub struct MetaPageTable {
    l1: Box<[AtomicPtr<Leaf>]>,
    /// Host bytes spent on leaves + metadata arrays (for Figure 11/12).
    shadow_bytes: AtomicU64,
    /// This table's never-reused identity, pre-shifted for key packing
    /// (see [`P2oSlot`]). Immutable for the table's lifetime — the cache
    /// never needs flushing, so freeing an object costs other threads'
    /// warm translations nothing.
    identity: u64,
    /// Runtime kill switch used by the hot-path benchmarks.
    cache_enabled: AtomicBool,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Flight-recorder attach point; shadow remaps (object set/clear,
    /// span registration) are recorded here as Full-level events. The
    /// lookup fast paths never touch it.
    trace: Trace,
}

// SAFETY: all shared state is accessed through atomics; raw pointers are
// installed via CAS, never mutated afterwards, and freed only in `Drop`.
unsafe impl Send for MetaPageTable {}
// SAFETY: as above.
unsafe impl Sync for MetaPageTable {}

impl Default for MetaPageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl MetaPageTable {
    /// Creates an empty metapagetable.
    pub fn new() -> Self {
        MetaPageTable {
            l1: (0..L1_COUNT)
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect(),
            shadow_bytes: AtomicU64::new(0),
            identity: fresh_table_identity(),
            cache_enabled: AtomicBool::new(true),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            trace: Trace::new(),
        }
    }

    /// Attaches a flight recorder; shadow remaps are recorded from then
    /// on (at [`TraceLevel::Full`]). Once-only: the first tracer wins.
    pub fn set_tracer(&self, tracer: &Arc<Tracer>) {
        self.trace.attach(tracer);
    }

    fn page_index(addr: Addr) -> Option<usize> {
        if !(HEAP_BASE..HEAP_BASE + HEAP_SIZE).contains(&addr) {
            return None;
        }
        Some(((addr - HEAP_BASE) >> PAGE_SHIFT) as usize)
    }

    fn leaf(&self, idx: usize, create: bool) -> Option<&Leaf> {
        let slot = &self.l1[idx];
        let mut cur = slot.load(Ordering::Acquire);
        if cur.is_null() {
            if !create {
                return None;
            }
            // SAFETY: a `Leaf` is an all-atomic struct for which zeroed
            // memory is a valid value; allocated with its own layout.
            let fresh = unsafe {
                let layout = std::alloc::Layout::new::<Leaf>();
                let raw = std::alloc::alloc_zeroed(layout) as *mut Leaf;
                if raw.is_null() {
                    std::alloc::handle_alloc_error(layout);
                }
                raw
            };
            match slot.compare_exchange(ptr::null_mut(), fresh, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    self.shadow_bytes
                        .fetch_add(core::mem::size_of::<Leaf>() as u64, Ordering::Relaxed);
                    cur = fresh;
                }
                Err(winner) => {
                    // SAFETY: `fresh` lost the race and was never shared.
                    unsafe { drop(Box::from_raw(fresh)) };
                    cur = winner;
                }
            }
        }
        // SAFETY: non-null leaves are valid for the table's lifetime.
        Some(unsafe { &*cur })
    }

    /// Registers a span's pages with compression `shift`, allocating each
    /// page's metadata array if not already present. Idempotent: pages that
    /// already carry an array are left untouched (spans never change class,
    /// so the shift never changes).
    pub fn register_span(&self, span_start: Addr, span_pages: u64, shift: u32) {
        debug_assert_eq!(span_start % PAGE_SIZE, 0);
        debug_assert!(shift <= 12);
        let mut fresh_pages = 0u64;
        for p in 0..span_pages {
            let page_addr = span_start + p * PAGE_SIZE;
            let idx = Self::page_index(page_addr).expect("span inside heap");
            let leaf = self.leaf(idx / FANOUT, true).expect("created");
            let slot = &leaf.entries[idx % FANOUT];
            if slot.load(Ordering::Acquire) != 0 {
                continue;
            }
            let slots = (PAGE_SIZE >> shift) as usize;
            let array: Box<[AtomicU64]> = (0..slots).map(|_| AtomicU64::new(0)).collect();
            let raw = Box::into_raw(array) as *mut AtomicU64;
            let packed = pack_entry(raw, shift);
            match slot.compare_exchange(0, packed, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    self.shadow_bytes
                        .fetch_add(slots as u64 * 8, Ordering::Relaxed);
                    fresh_pages += 1;
                }
                Err(_) => {
                    // Another thread registered the page concurrently.
                    // SAFETY: `raw` was just created from a box of length
                    // `slots` and never shared.
                    unsafe {
                        drop(Box::from_raw(ptr::slice_from_raw_parts_mut(raw, slots)));
                    }
                }
            }
        }
        if fresh_pages > 0 {
            // Only spans that actually materialised shadow pages are
            // events; the idempotent re-registration on every alloc is not.
            self.trace.record(
                TraceLevel::Full,
                EventCode::SpanRegister,
                span_start,
                fresh_pages,
                shift as u64,
            );
        }
    }

    /// `createobj` (paper §4.3): points every shadow slot covered by
    /// `[base, base + len)` at `meta`. The span must have been registered.
    pub fn set_object(&self, base: Addr, len: u64, meta: u64) {
        let span = self.trace.span_start(TraceLevel::Full);
        self.set_slots(base, len, meta);
        self.trace.span_end(span, EventCode::ShadowSet, base, len);
    }

    fn set_slots(&self, base: Addr, len: u64, meta: u64) {
        let mut addr = base;
        let end = base + len.max(1);
        while addr < end {
            let idx = Self::page_index(addr).expect("object inside heap");
            let leaf = self.leaf(idx / FANOUT, false).expect("span registered");
            let entry = leaf.entries[idx % FANOUT].load(Ordering::Acquire);
            debug_assert_ne!(entry, 0, "page not registered");
            let (array, shift) = unpack_entry(entry);
            let page_base = addr & !(PAGE_SIZE - 1);
            let page_end = page_base + PAGE_SIZE;
            let first_slot = ((addr - page_base) >> shift) as usize;
            let last_byte = end.min(page_end) - 1;
            let last_slot = ((last_byte - page_base) >> shift) as usize;
            for s in first_slot..=last_slot {
                // SAFETY: `array` points at a live metadata array of
                // `PAGE_SIZE >> shift` entries; `s` is below that bound by
                // construction.
                unsafe { (*array.add(s)).store(meta, Ordering::Release) };
            }
            addr = page_end;
        }
    }

    /// Clears the object mapping for `[base, base + len)` (called on free).
    ///
    /// Deliberately does *not* touch the per-thread translation caches:
    /// they memoize the page's packed leaf entry, which is immutable, while
    /// this call zeroes the metadata array behind it — which every lookup
    /// re-reads. A warm cache therefore observes the clear (and any later
    /// reuse of the slots) immediately, at zero cost to other threads.
    pub fn clear_object(&self, base: Addr, len: u64) {
        let span = self.trace.span_start(TraceLevel::Full);
        self.set_slots(base, len, 0);
        self.trace.span_end(span, EventCode::ShadowClear, base, len);
    }

    /// `ptr2obj` (paper §4.3, Figure 5): maps any interior pointer to its
    /// object's metadata value, or `None`.
    ///
    /// The uncached walk is two dependent loads (leaf pointer, packed
    /// entry) plus the metadata-array load. A per-thread direct-mapped
    /// cache memoizes the first two; the array load always happens, which
    /// is what keeps pages holding many small objects — and object
    /// clears — exactly as precise as the full walk.
    #[inline]
    pub fn lookup(&self, addr: Addr) -> Option<u64> {
        let idx = Self::page_index(addr)?;
        let entry = self.entry_for_page(idx)?;
        let (array, shift) = unpack_entry(entry);
        let slot = ((addr & (PAGE_SIZE - 1)) >> shift) as usize;
        // SAFETY: the array has `PAGE_SIZE >> shift` slots and
        // `addr & 0xFFF >> shift` is below that bound.
        let meta = unsafe { (*array.add(slot)).load(Ordering::Acquire) };
        (meta != 0).then_some(meta)
    }

    /// [`Self::lookup`] minus the per-thread cache: the straight two-load
    /// walk, unconditionally. A one-shot resolution — the single `ptr2obj`
    /// of a free or a realloc — touches its entry once, so probing the
    /// cache can only add cost and evict a slot some hot store loop is
    /// using; callers on those paths use this instead.
    #[inline]
    pub fn lookup_cold(&self, addr: Addr) -> Option<u64> {
        let idx = Self::page_index(addr)?;
        let entry = self.entry_walk(idx)?;
        let (array, shift) = unpack_entry(entry);
        let slot = ((addr & (PAGE_SIZE - 1)) >> shift) as usize;
        // SAFETY: the array has `PAGE_SIZE >> shift` slots and
        // `addr & 0xFFF >> shift` is below that bound.
        let meta = unsafe { (*array.add(slot)).load(Ordering::Acquire) };
        (meta != 0).then_some(meta)
    }

    /// Resolves the packed leaf entry for global heap page `idx`, consulting
    /// the calling thread's cache first. The hit path is one u64 compare
    /// against the packed (identity | page) key — no atomic load, no second
    /// branch — which is what lets it beat the two-load walk even when the
    /// walk's cache lines are L1-resident.
    #[inline]
    fn entry_for_page(&self, idx: usize) -> Option<u64> {
        if !self.cache_enabled.load(Ordering::Relaxed) {
            return self.entry_walk(idx);
        }
        let key = self.identity | idx as u64;
        P2O.with(|cache| {
            let slot = cache.slots[idx & (P2O_SLOTS - 1)].get();
            if slot.key == key {
                self.note_cache_hit(cache);
                Some(slot.entry)
            } else {
                self.fill_slot(cache, idx, key)
            }
        })
    }

    /// The miss path: flush the hit batch, walk, fill the slot. Kept out
    /// of line so the hit path compiles to a handful of instructions.
    #[cold]
    fn fill_slot(&self, cache: &ThreadP2o, idx: usize, key: u64) -> Option<u64> {
        self.flush_pending_hits(cache);
        // The batch that starts now is this table's (any foreign remnant
        // was just dropped by the flush).
        cache.batch_owner.set(self.identity);
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let entry = self.entry_walk(idx)?;
        // Unregistered pages (None) are never cached: registration
        // must become visible on the very next lookup.
        cache.slots[idx & (P2O_SLOTS - 1)].set(P2oSlot { key, entry });
        Some(entry)
    }

    /// The uncached two-level walk.
    #[inline]
    fn entry_walk(&self, idx: usize) -> Option<u64> {
        let leaf = self.leaf(idx / FANOUT, false)?;
        let entry = leaf.entries[idx % FANOUT].load(Ordering::Acquire);
        (entry != 0).then_some(entry)
    }

    /// Records one cache hit: decrement the countdown, flush the batch
    /// when it reaches zero. Attribution to a table happens only at flush
    /// time — a batch whose owner is a *different* table (possible only
    /// when lookups of two live tables interleave on one thread with no
    /// miss in between) is dropped rather than flushed, so a counter is
    /// never inflated by a table that may already be gone.
    #[inline(always)]
    fn note_cache_hit(&self, cache: &ThreadP2o) {
        let left = cache.hits_left.get() - 1;
        if left == 0 {
            if cache.batch_owner.get() == self.identity {
                self.cache_hits
                    .fetch_add(HIT_FLUSH_EVERY, Ordering::Relaxed);
            }
            cache.hits_left.set(HIT_FLUSH_EVERY);
        } else {
            cache.hits_left.set(left);
        }
    }

    fn flush_pending_hits(&self, cache: &ThreadP2o) {
        let n = HIT_FLUSH_EVERY - cache.hits_left.get();
        if n > 0 {
            if cache.batch_owner.get() == self.identity {
                self.cache_hits.fetch_add(n, Ordering::Relaxed);
            }
            cache.hits_left.set(HIT_FLUSH_EVERY);
        }
    }

    /// `ptr2obj`-cache hit/miss counters for this table.
    ///
    /// The calling thread's pending hit batch is flushed first, so
    /// single-threaded counts are exact; concurrent threads may each lag
    /// by one unflushed batch. When lookups of *several* live tables
    /// interleave on one thread with no miss in between, a mixed batch is
    /// attributed to the table that started it (hits are accounted at
    /// flush time, not per lookup) — a deliberate, bounded imprecision
    /// that keeps the hit path to four instructions of accounting.
    pub fn cache_stats(&self) -> P2oCacheStats {
        P2O.with(|cache| self.flush_pending_hits(cache));
        P2oCacheStats {
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Enables or disables the per-thread `ptr2obj` cache at runtime (it
    /// starts enabled). Behaviour is identical either way; the hot-path
    /// benchmarks use this to measure both configurations in one process.
    pub fn set_cache_enabled(&self, on: bool) {
        self.cache_enabled.store(on, Ordering::Relaxed);
    }

    /// Host bytes consumed by the shadow structures.
    pub fn shadow_bytes(&self) -> u64 {
        self.shadow_bytes.load(Ordering::Relaxed)
    }
}

impl Drop for MetaPageTable {
    fn drop(&mut self) {
        for slot in self.l1.iter() {
            let leaf = slot.swap(ptr::null_mut(), Ordering::AcqRel);
            if leaf.is_null() {
                continue;
            }
            // SAFETY: exclusive access in drop; leaves own their arrays.
            let leaf = unsafe { Box::from_raw(leaf) };
            for e in leaf.entries.iter() {
                let entry = e.swap(0, Ordering::AcqRel);
                if entry == 0 {
                    continue;
                }
                let (array, shift) = unpack_entry(entry);
                let slots = (PAGE_SIZE >> shift) as usize;
                // SAFETY: arrays were created by `Box::into_raw` with
                // exactly `slots` elements and are freed exactly once here.
                unsafe {
                    drop(Box::from_raw(ptr::slice_from_raw_parts_mut(array, slots)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_on_empty_table_is_none() {
        let t = MetaPageTable::new();
        assert_eq!(t.lookup(HEAP_BASE), None);
        assert_eq!(t.lookup(HEAP_BASE + 123), None);
        assert_eq!(t.lookup(0x1000), None); // outside heap
    }

    #[test]
    fn set_and_lookup_small_object() {
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, 1, 5); // 32-byte slots
        t.set_object(HEAP_BASE + 64, 32, 0xABCD);
        assert_eq!(t.lookup(HEAP_BASE + 64), Some(0xABCD));
        assert_eq!(t.lookup(HEAP_BASE + 95), Some(0xABCD));
        assert_eq!(t.lookup(HEAP_BASE + 63), None);
        assert_eq!(t.lookup(HEAP_BASE + 96), None);
    }

    #[test]
    fn object_spanning_pages() {
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, 4, 12); // large span: one slot per page
        t.set_object(HEAP_BASE, 4 * PAGE_SIZE, 7);
        for off in [0u64, 1, PAGE_SIZE, 2 * PAGE_SIZE + 77, 4 * PAGE_SIZE - 1] {
            assert_eq!(t.lookup(HEAP_BASE + off), Some(7), "offset {off}");
        }
        assert_eq!(t.lookup(HEAP_BASE + 4 * PAGE_SIZE), None);
    }

    #[test]
    fn clear_removes_mapping() {
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, 1, 4);
        t.set_object(HEAP_BASE + 48, 48, 1);
        t.clear_object(HEAP_BASE + 48, 48);
        assert_eq!(t.lookup(HEAP_BASE + 48), None);
    }

    #[test]
    fn neighbouring_objects_do_not_bleed() {
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, 1, 4); // 16-byte slots, e.g. stride 48
        t.set_object(HEAP_BASE, 48, 1);
        t.set_object(HEAP_BASE + 48, 48, 2);
        assert_eq!(t.lookup(HEAP_BASE + 47), Some(1));
        assert_eq!(t.lookup(HEAP_BASE + 48), Some(2));
        t.clear_object(HEAP_BASE, 48);
        assert_eq!(t.lookup(HEAP_BASE), None);
        assert_eq!(t.lookup(HEAP_BASE + 48), Some(2));
    }

    #[test]
    fn register_is_idempotent_and_accounts_bytes() {
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, 2, 3);
        let bytes = t.shadow_bytes();
        assert!(bytes >= 2 * (PAGE_SIZE >> 3) * 8);
        t.register_span(HEAP_BASE, 2, 3);
        assert_eq!(t.shadow_bytes(), bytes, "re-registration allocates nothing");
    }

    #[test]
    fn entry_packing_roundtrip() {
        let array = Box::into_raw(
            (0..4)
                .map(|_| AtomicU64::new(0))
                .collect::<Box<[AtomicU64]>>(),
        ) as *mut AtomicU64;
        let packed = pack_entry(array, 9);
        let (p, s) = unpack_entry(packed);
        assert_eq!(p, array);
        assert_eq!(s, 9);
        // SAFETY: reclaim the test allocation (4 entries).
        unsafe { drop(Box::from_raw(ptr::slice_from_raw_parts_mut(array, 4))) };
    }

    #[test]
    fn concurrent_registration_and_lookup() {
        use std::sync::Arc;
        let t = Arc::new(MetaPageTable::new());
        let mut handles = Vec::new();
        for th in 0..8u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let span = HEAP_BASE + th * 4 * PAGE_SIZE;
                t.register_span(span, 4, 6);
                for i in 0..64u64 {
                    t.set_object(span + i * 256, 256, th * 100 + i + 1);
                }
                for i in 0..64u64 {
                    assert_eq!(t.lookup(span + i * 256 + 128), Some(th * 100 + i + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn warm_cache_resolves_recycled_page_to_new_object() {
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, 1, 6); // 64-byte slots
        t.set_object(HEAP_BASE, 64, 0x0_1D1);
        // Warm the thread-local cache on this page.
        for _ in 0..10 {
            assert_eq!(t.lookup(HEAP_BASE + 8), Some(0x0_1D1));
        }
        // Free the object and recycle its slots for a new one, as the
        // allocator does when a span's object is reused.
        t.clear_object(HEAP_BASE, 64);
        assert_eq!(t.lookup(HEAP_BASE + 8), None, "freed object resolves");
        t.set_object(HEAP_BASE, 64, 0x0_2E2);
        // A still-warm cache must yield the NEW object's metadata.
        assert_eq!(t.lookup(HEAP_BASE + 8), Some(0x0_2E2));
        assert_eq!(t.lookup(HEAP_BASE + 63), Some(0x0_2E2));
    }

    #[test]
    fn cache_hits_accumulate_and_disable_works() {
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, 1, 4);
        t.set_object(HEAP_BASE, 16, 9);
        for _ in 0..1000 {
            assert_eq!(t.lookup(HEAP_BASE), Some(9));
        }
        let s = t.cache_stats();
        assert!(s.hits >= 990, "repeated lookups should hit: {s:?}");
        assert!(s.misses >= 1);
        t.set_cache_enabled(false);
        for _ in 0..100 {
            assert_eq!(t.lookup(HEAP_BASE), Some(9));
        }
        assert_eq!(t.cache_stats(), s, "disabled cache counts nothing");
    }

    #[test]
    fn clear_object_keeps_other_pages_translations_warm() {
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, 2, 6);
        t.set_object(HEAP_BASE, 64, 1); // page 0
        t.set_object(HEAP_BASE + PAGE_SIZE, 64, 2); // page 1
                                                    // Warm both pages' translations, then drain the pending batch so
                                                    // the counters below are exact.
        for _ in 0..10 {
            assert_eq!(t.lookup(HEAP_BASE), Some(1));
            assert_eq!(t.lookup(HEAP_BASE + PAGE_SIZE), Some(2));
        }
        let before = t.cache_stats();
        // Freeing the object on page 0 must not flush page 1's slot: the
        // next lookups are all hits, zero new misses.
        t.clear_object(HEAP_BASE, 64);
        assert_eq!(t.lookup(HEAP_BASE + PAGE_SIZE), Some(2));
        assert_eq!(t.lookup(HEAP_BASE), None, "clear itself is observed");
        let after = t.cache_stats();
        assert_eq!(after.misses, before.misses, "free flushed a translation");
        assert_eq!(after.hits, before.hits + 2);
    }

    #[test]
    fn cache_entries_do_not_leak_across_tables() {
        let a = MetaPageTable::new();
        let b = MetaPageTable::new();
        a.register_span(HEAP_BASE, 1, 4);
        a.set_object(HEAP_BASE, 16, 1);
        assert_eq!(a.lookup(HEAP_BASE), Some(1)); // warm A
        assert_eq!(b.lookup(HEAP_BASE), None, "B has nothing registered");
        b.register_span(HEAP_BASE, 1, 12);
        b.set_object(HEAP_BASE, 16, 2);
        assert_eq!(a.lookup(HEAP_BASE), Some(1));
        assert_eq!(b.lookup(HEAP_BASE), Some(2));
    }

    #[test]
    fn racing_register_same_span_is_safe() {
        use std::sync::Arc;
        let t = Arc::new(MetaPageTable::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                t.register_span(HEAP_BASE, 8, 4);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        t.set_object(HEAP_BASE + 16, 16, 5);
        assert_eq!(t.lookup(HEAP_BASE + 16), Some(5));
    }
}
