//! Randomized test: the metapagetable resolves every interior pointer of
//! every registered object, and nothing else. Seeded cases via the in-repo
//! [`SmallRng`] (formerly proptest).

use dangsan_shadow::MetaPageTable;
use dangsan_vmem::rng::SmallRng;
use dangsan_vmem::{HEAP_BASE, PAGE_SIZE};

#[cfg(not(feature = "heavy-tests"))]
const CASES: u64 = 128;
#[cfg(feature = "heavy-tests")]
const CASES: u64 = 1024;

/// Tile a span with objects of a stride compatible with the shift and
/// check exhaustive interior-pointer resolution.
#[test]
fn tiled_span_resolves_exactly() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5AD0 + case);
        let shift = rng.gen_range(3u32..13);
        let stride_mult = rng.gen_range(1u64..8);
        let span_pages = rng.gen_range(1u64..4);
        let stride = (1u64 << shift) * stride_mult;
        let span_bytes = span_pages * PAGE_SIZE;
        if stride > span_bytes {
            continue;
        }
        let objects = span_bytes / stride;
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, span_pages, shift);
        for i in 0..objects {
            t.set_object(HEAP_BASE + i * stride, stride, i + 1);
        }
        // Probe a sample of addresses in the span.
        let step = (stride / 4).max(1);
        let mut addr = HEAP_BASE;
        while addr < HEAP_BASE + objects * stride {
            let expect = (addr - HEAP_BASE) / stride + 1;
            assert_eq!(
                t.lookup(addr),
                Some(expect),
                "shift {shift} stride {stride}"
            );
            addr += step;
        }
        // Clearing one object leaves its neighbours intact.
        if objects >= 3 {
            t.clear_object(HEAP_BASE + stride, stride);
            assert_eq!(t.lookup(HEAP_BASE + stride), None);
            assert_eq!(t.lookup(HEAP_BASE + stride - 1), Some(1));
            assert_eq!(t.lookup(HEAP_BASE + 2 * stride), Some(3));
        }
    }
}
