//! Property test: the metapagetable resolves every interior pointer of
//! every registered object, and nothing else.

use dangsan_shadow::MetaPageTable;
use dangsan_vmem::{HEAP_BASE, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tile a span with objects of a stride compatible with the shift and
    /// check exhaustive interior-pointer resolution.
    #[test]
    fn tiled_span_resolves_exactly(
        shift in 3u32..=12,
        stride_mult in 1u64..8,
        span_pages in 1u64..4,
    ) {
        let stride = (1u64 << shift) * stride_mult;
        let span_bytes = span_pages * PAGE_SIZE;
        prop_assume!(stride <= span_bytes);
        let objects = span_bytes / stride;
        let t = MetaPageTable::new();
        t.register_span(HEAP_BASE, span_pages, shift);
        for i in 0..objects {
            t.set_object(HEAP_BASE + i * stride, stride, i + 1);
        }
        // Probe a sample of addresses in the span.
        let step = (stride / 4).max(1);
        let mut addr = HEAP_BASE;
        while addr < HEAP_BASE + objects * stride {
            let expect = (addr - HEAP_BASE) / stride + 1;
            prop_assert_eq!(t.lookup(addr), Some(expect));
            addr += step;
        }
        // Clearing one object leaves its neighbours intact.
        if objects >= 3 {
            t.clear_object(HEAP_BASE + stride, stride);
            prop_assert_eq!(t.lookup(HEAP_BASE + stride), None);
            prop_assert_eq!(t.lookup(HEAP_BASE + stride - 1), Some(1));
            prop_assert_eq!(t.lookup(HEAP_BASE + 2 * stride), Some(3));
        }
    }
}
