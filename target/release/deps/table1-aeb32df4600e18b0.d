/root/repo/target/release/deps/table1-aeb32df4600e18b0.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-aeb32df4600e18b0: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
