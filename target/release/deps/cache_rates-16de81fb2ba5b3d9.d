/root/repo/target/release/deps/cache_rates-16de81fb2ba5b3d9.d: crates/bench/src/bin/cache_rates.rs

/root/repo/target/release/deps/cache_rates-16de81fb2ba5b3d9: crates/bench/src/bin/cache_rates.rs

crates/bench/src/bin/cache_rates.rs:
