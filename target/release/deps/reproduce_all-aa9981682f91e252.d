/root/repo/target/release/deps/reproduce_all-aa9981682f91e252.d: crates/bench/src/bin/reproduce_all.rs

/root/repo/target/release/deps/reproduce_all-aa9981682f91e252: crates/bench/src/bin/reproduce_all.rs

crates/bench/src/bin/reproduce_all.rs:
