/root/repo/target/release/deps/prop_text-d3b190412221704f.d: crates/instr/tests/prop_text.rs

/root/repo/target/release/deps/prop_text-d3b190412221704f: crates/instr/tests/prop_text.rs

crates/instr/tests/prop_text.rs:
