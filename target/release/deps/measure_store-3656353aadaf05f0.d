/root/repo/target/release/deps/measure_store-3656353aadaf05f0.d: crates/bench/src/bin/measure_store.rs

/root/repo/target/release/deps/measure_store-3656353aadaf05f0: crates/bench/src/bin/measure_store.rs

crates/bench/src/bin/measure_store.rs:
