/root/repo/target/release/deps/fig9-ff0a3b79da3cf35d.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-ff0a3b79da3cf35d: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
