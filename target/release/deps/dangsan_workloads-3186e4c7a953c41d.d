/root/repo/target/release/deps/dangsan_workloads-3186e4c7a953c41d.d: crates/workloads/src/lib.rs crates/workloads/src/cost.rs crates/workloads/src/env.rs crates/workloads/src/exploits.rs crates/workloads/src/parsec.rs crates/workloads/src/profiles.rs crates/workloads/src/server.rs crates/workloads/src/spec.rs

/root/repo/target/release/deps/libdangsan_workloads-3186e4c7a953c41d.rlib: crates/workloads/src/lib.rs crates/workloads/src/cost.rs crates/workloads/src/env.rs crates/workloads/src/exploits.rs crates/workloads/src/parsec.rs crates/workloads/src/profiles.rs crates/workloads/src/server.rs crates/workloads/src/spec.rs

/root/repo/target/release/deps/libdangsan_workloads-3186e4c7a953c41d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cost.rs crates/workloads/src/env.rs crates/workloads/src/exploits.rs crates/workloads/src/parsec.rs crates/workloads/src/profiles.rs crates/workloads/src/server.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cost.rs:
crates/workloads/src/env.rs:
crates/workloads/src/exploits.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/profiles.rs:
crates/workloads/src/server.rs:
crates/workloads/src/spec.rs:
