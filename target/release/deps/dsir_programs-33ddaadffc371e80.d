/root/repo/target/release/deps/dsir_programs-33ddaadffc371e80.d: tests/dsir_programs.rs

/root/repo/target/release/deps/dsir_programs-33ddaadffc371e80: tests/dsir_programs.rs

tests/dsir_programs.rs:
