/root/repo/target/release/deps/dangsan_workloads-e749d265462b8c13.d: crates/workloads/src/lib.rs crates/workloads/src/cost.rs crates/workloads/src/env.rs crates/workloads/src/exploits.rs crates/workloads/src/parsec.rs crates/workloads/src/profiles.rs crates/workloads/src/server.rs crates/workloads/src/spec.rs

/root/repo/target/release/deps/dangsan_workloads-e749d265462b8c13: crates/workloads/src/lib.rs crates/workloads/src/cost.rs crates/workloads/src/env.rs crates/workloads/src/exploits.rs crates/workloads/src/parsec.rs crates/workloads/src/profiles.rs crates/workloads/src/server.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cost.rs:
crates/workloads/src/env.rs:
crates/workloads/src/exploits.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/profiles.rs:
crates/workloads/src/server.rs:
crates/workloads/src/spec.rs:
