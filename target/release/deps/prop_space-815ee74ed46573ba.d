/root/repo/target/release/deps/prop_space-815ee74ed46573ba.d: crates/vmem/tests/prop_space.rs

/root/repo/target/release/deps/prop_space-815ee74ed46573ba: crates/vmem/tests/prop_space.rs

crates/vmem/tests/prop_space.rs:
