/root/repo/target/release/deps/prop_equivalence-84a4495064951e02.d: crates/instr/tests/prop_equivalence.rs

/root/repo/target/release/deps/prop_equivalence-84a4495064951e02: crates/instr/tests/prop_equivalence.rs

crates/instr/tests/prop_equivalence.rs:
