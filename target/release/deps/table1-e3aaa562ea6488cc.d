/root/repo/target/release/deps/table1-e3aaa562ea6488cc.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-e3aaa562ea6488cc: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
