/root/repo/target/release/deps/fig10-99713d0b9035ba8f.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-99713d0b9035ba8f: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
