/root/repo/target/release/deps/dangsan_instr-ce6c6599f2226405.d: crates/instr/src/lib.rs crates/instr/src/analysis.rs crates/instr/src/builder.rs crates/instr/src/instrument.rs crates/instr/src/interp.rs crates/instr/src/ir.rs crates/instr/src/text.rs

/root/repo/target/release/deps/libdangsan_instr-ce6c6599f2226405.rlib: crates/instr/src/lib.rs crates/instr/src/analysis.rs crates/instr/src/builder.rs crates/instr/src/instrument.rs crates/instr/src/interp.rs crates/instr/src/ir.rs crates/instr/src/text.rs

/root/repo/target/release/deps/libdangsan_instr-ce6c6599f2226405.rmeta: crates/instr/src/lib.rs crates/instr/src/analysis.rs crates/instr/src/builder.rs crates/instr/src/instrument.rs crates/instr/src/interp.rs crates/instr/src/ir.rs crates/instr/src/text.rs

crates/instr/src/lib.rs:
crates/instr/src/analysis.rs:
crates/instr/src/builder.rs:
crates/instr/src/instrument.rs:
crates/instr/src/interp.rs:
crates/instr/src/ir.rs:
crates/instr/src/text.rs:
