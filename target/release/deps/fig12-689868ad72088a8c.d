/root/repo/target/release/deps/fig12-689868ad72088a8c.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-689868ad72088a8c: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
