/root/repo/target/release/deps/extensions-9b94bfd8601e4bf2.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-9b94bfd8601e4bf2: tests/extensions.rs

tests/extensions.rs:
