/root/repo/target/release/deps/ablations-acaed7b06800e715.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-acaed7b06800e715: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
