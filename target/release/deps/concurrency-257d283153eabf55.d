/root/repo/target/release/deps/concurrency-257d283153eabf55.d: tests/concurrency.rs

/root/repo/target/release/deps/concurrency-257d283153eabf55: tests/concurrency.rs

tests/concurrency.rs:
