/root/repo/target/release/deps/prop_shadow-3dc9cd3059a9aaca.d: crates/shadow/tests/prop_shadow.rs

/root/repo/target/release/deps/prop_shadow-3dc9cd3059a9aaca: crates/shadow/tests/prop_shadow.rs

crates/shadow/tests/prop_shadow.rs:
