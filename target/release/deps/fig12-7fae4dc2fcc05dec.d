/root/repo/target/release/deps/fig12-7fae4dc2fcc05dec.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-7fae4dc2fcc05dec: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
