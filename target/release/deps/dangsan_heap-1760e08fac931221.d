/root/repo/target/release/deps/dangsan_heap-1760e08fac931221.d: crates/heap/src/lib.rs crates/heap/src/heap.rs crates/heap/src/size_classes.rs crates/heap/src/span.rs crates/heap/src/thread_cache.rs

/root/repo/target/release/deps/dangsan_heap-1760e08fac931221: crates/heap/src/lib.rs crates/heap/src/heap.rs crates/heap/src/size_classes.rs crates/heap/src/span.rs crates/heap/src/thread_cache.rs

crates/heap/src/lib.rs:
crates/heap/src/heap.rs:
crates/heap/src/size_classes.rs:
crates/heap/src/span.rs:
crates/heap/src/thread_cache.rs:
