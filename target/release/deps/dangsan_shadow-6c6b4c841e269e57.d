/root/repo/target/release/deps/dangsan_shadow-6c6b4c841e269e57.d: crates/shadow/src/lib.rs

/root/repo/target/release/deps/libdangsan_shadow-6c6b4c841e269e57.rlib: crates/shadow/src/lib.rs

/root/repo/target/release/deps/libdangsan_shadow-6c6b4c841e269e57.rmeta: crates/shadow/src/lib.rs

crates/shadow/src/lib.rs:
