/root/repo/target/release/deps/dangsan_bench-7d9dbef8891f757d.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/ir_suite.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libdangsan_bench-7d9dbef8891f757d.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/ir_suite.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libdangsan_bench-7d9dbef8891f757d.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/ir_suite.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/ir_suite.rs:
crates/bench/src/report.rs:
