/root/repo/target/release/deps/full_pipeline-72025748fe7bfef8.d: tests/full_pipeline.rs

/root/repo/target/release/deps/full_pipeline-72025748fe7bfef8: tests/full_pipeline.rs

tests/full_pipeline.rs:
