/root/repo/target/release/deps/prop_compress-a9d77dbbef00f314.d: crates/core/tests/prop_compress.rs

/root/repo/target/release/deps/prop_compress-a9d77dbbef00f314: crates/core/tests/prop_compress.rs

crates/core/tests/prop_compress.rs:
