/root/repo/target/release/deps/dangsan_heap-0ceedb839fc6d508.d: crates/heap/src/lib.rs crates/heap/src/heap.rs crates/heap/src/size_classes.rs crates/heap/src/span.rs crates/heap/src/thread_cache.rs

/root/repo/target/release/deps/libdangsan_heap-0ceedb839fc6d508.rlib: crates/heap/src/lib.rs crates/heap/src/heap.rs crates/heap/src/size_classes.rs crates/heap/src/span.rs crates/heap/src/thread_cache.rs

/root/repo/target/release/deps/libdangsan_heap-0ceedb839fc6d508.rmeta: crates/heap/src/lib.rs crates/heap/src/heap.rs crates/heap/src/size_classes.rs crates/heap/src/span.rs crates/heap/src/thread_cache.rs

crates/heap/src/lib.rs:
crates/heap/src/heap.rs:
crates/heap/src/size_classes.rs:
crates/heap/src/span.rs:
crates/heap/src/thread_cache.rs:
