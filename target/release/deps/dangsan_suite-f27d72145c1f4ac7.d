/root/repo/target/release/deps/dangsan_suite-f27d72145c1f4ac7.d: src/lib.rs

/root/repo/target/release/deps/dangsan_suite-f27d72145c1f4ac7: src/lib.rs

src/lib.rs:
