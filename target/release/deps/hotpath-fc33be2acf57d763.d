/root/repo/target/release/deps/hotpath-fc33be2acf57d763.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/release/deps/hotpath-fc33be2acf57d763: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:
