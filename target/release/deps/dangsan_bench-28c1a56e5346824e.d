/root/repo/target/release/deps/dangsan_bench-28c1a56e5346824e.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/ir_suite.rs crates/bench/src/report.rs

/root/repo/target/release/deps/dangsan_bench-28c1a56e5346824e: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/ir_suite.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/ir_suite.rs:
crates/bench/src/report.rs:
