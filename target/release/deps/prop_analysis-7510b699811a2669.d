/root/repo/target/release/deps/prop_analysis-7510b699811a2669.d: crates/instr/tests/prop_analysis.rs

/root/repo/target/release/deps/prop_analysis-7510b699811a2669: crates/instr/tests/prop_analysis.rs

crates/instr/tests/prop_analysis.rs:
