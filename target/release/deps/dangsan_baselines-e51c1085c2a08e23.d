/root/repo/target/release/deps/dangsan_baselines-e51c1085c2a08e23.d: crates/baselines/src/lib.rs crates/baselines/src/dangnull.rs crates/baselines/src/freesentry.rs crates/baselines/src/locked.rs crates/baselines/src/quarantine.rs

/root/repo/target/release/deps/dangsan_baselines-e51c1085c2a08e23: crates/baselines/src/lib.rs crates/baselines/src/dangnull.rs crates/baselines/src/freesentry.rs crates/baselines/src/locked.rs crates/baselines/src/quarantine.rs

crates/baselines/src/lib.rs:
crates/baselines/src/dangnull.rs:
crates/baselines/src/freesentry.rs:
crates/baselines/src/locked.rs:
crates/baselines/src/quarantine.rs:
