/root/repo/target/release/deps/dangsan_baselines-d69daa2da998799b.d: crates/baselines/src/lib.rs crates/baselines/src/dangnull.rs crates/baselines/src/freesentry.rs crates/baselines/src/locked.rs crates/baselines/src/quarantine.rs

/root/repo/target/release/deps/libdangsan_baselines-d69daa2da998799b.rlib: crates/baselines/src/lib.rs crates/baselines/src/dangnull.rs crates/baselines/src/freesentry.rs crates/baselines/src/locked.rs crates/baselines/src/quarantine.rs

/root/repo/target/release/deps/libdangsan_baselines-d69daa2da998799b.rmeta: crates/baselines/src/lib.rs crates/baselines/src/dangnull.rs crates/baselines/src/freesentry.rs crates/baselines/src/locked.rs crates/baselines/src/quarantine.rs

crates/baselines/src/lib.rs:
crates/baselines/src/dangnull.rs:
crates/baselines/src/freesentry.rs:
crates/baselines/src/locked.rs:
crates/baselines/src/quarantine.rs:
