/root/repo/target/release/deps/hotpath-9a436c93e0f0071f.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/release/deps/hotpath-9a436c93e0f0071f: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:
