/root/repo/target/release/deps/servers-0e7cf6ead4052920.d: crates/bench/src/bin/servers.rs

/root/repo/target/release/deps/servers-0e7cf6ead4052920: crates/bench/src/bin/servers.rs

crates/bench/src/bin/servers.rs:
