/root/repo/target/release/deps/effectiveness-58274d8154a883da.d: crates/bench/src/bin/effectiveness.rs

/root/repo/target/release/deps/effectiveness-58274d8154a883da: crates/bench/src/bin/effectiveness.rs

crates/bench/src/bin/effectiveness.rs:
