/root/repo/target/release/deps/fig11-0f2325996d6a343e.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-0f2325996d6a343e: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
