/root/repo/target/release/deps/dsir-2ecc3aba02a0231c.d: crates/instr/src/bin/dsir.rs

/root/repo/target/release/deps/dsir-2ecc3aba02a0231c: crates/instr/src/bin/dsir.rs

crates/instr/src/bin/dsir.rs:
