/root/repo/target/release/deps/dangsan_vmem-0d63862a12d8ca1a.d: crates/vmem/src/lib.rs crates/vmem/src/bump.rs crates/vmem/src/layout.rs crates/vmem/src/rng.rs crates/vmem/src/space.rs

/root/repo/target/release/deps/libdangsan_vmem-0d63862a12d8ca1a.rlib: crates/vmem/src/lib.rs crates/vmem/src/bump.rs crates/vmem/src/layout.rs crates/vmem/src/rng.rs crates/vmem/src/space.rs

/root/repo/target/release/deps/libdangsan_vmem-0d63862a12d8ca1a.rmeta: crates/vmem/src/lib.rs crates/vmem/src/bump.rs crates/vmem/src/layout.rs crates/vmem/src/rng.rs crates/vmem/src/space.rs

crates/vmem/src/lib.rs:
crates/vmem/src/bump.rs:
crates/vmem/src/layout.rs:
crates/vmem/src/rng.rs:
crates/vmem/src/space.rs:
