/root/repo/target/release/deps/dangsan-467c2ca4e0a8ce69.d: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/compress.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/hooked.rs crates/core/src/log.rs crates/core/src/object.rs crates/core/src/pool.rs crates/core/src/stats.rs

/root/repo/target/release/deps/dangsan-467c2ca4e0a8ce69: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/compress.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/hooked.rs crates/core/src/log.rs crates/core/src/object.rs crates/core/src/pool.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/api.rs:
crates/core/src/compress.rs:
crates/core/src/config.rs:
crates/core/src/detector.rs:
crates/core/src/hooked.rs:
crates/core/src/log.rs:
crates/core/src/object.rs:
crates/core/src/pool.rs:
crates/core/src/stats.rs:
