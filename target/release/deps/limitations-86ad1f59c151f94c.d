/root/repo/target/release/deps/limitations-86ad1f59c151f94c.d: tests/limitations.rs

/root/repo/target/release/deps/limitations-86ad1f59c151f94c: tests/limitations.rs

tests/limitations.rs:
