/root/repo/target/release/deps/effectiveness-bc23634640afade4.d: crates/bench/src/bin/effectiveness.rs

/root/repo/target/release/deps/effectiveness-bc23634640afade4: crates/bench/src/bin/effectiveness.rs

crates/bench/src/bin/effectiveness.rs:
