/root/repo/target/release/deps/cache_rates-590f655420e0c1a4.d: crates/bench/src/bin/cache_rates.rs

/root/repo/target/release/deps/cache_rates-590f655420e0c1a4: crates/bench/src/bin/cache_rates.rs

crates/bench/src/bin/cache_rates.rs:
