/root/repo/target/release/deps/fig11-04cd73498e9da259.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-04cd73498e9da259: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
