/root/repo/target/release/deps/dangsan_suite-22429a3b624802ce.d: src/lib.rs

/root/repo/target/release/deps/libdangsan_suite-22429a3b624802ce.rlib: src/lib.rs

/root/repo/target/release/deps/libdangsan_suite-22429a3b624802ce.rmeta: src/lib.rs

src/lib.rs:
