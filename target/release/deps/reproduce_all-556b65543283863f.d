/root/repo/target/release/deps/reproduce_all-556b65543283863f.d: crates/bench/src/bin/reproduce_all.rs

/root/repo/target/release/deps/reproduce_all-556b65543283863f: crates/bench/src/bin/reproduce_all.rs

crates/bench/src/bin/reproduce_all.rs:
