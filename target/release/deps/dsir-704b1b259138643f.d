/root/repo/target/release/deps/dsir-704b1b259138643f.d: crates/instr/src/bin/dsir.rs

/root/repo/target/release/deps/dsir-704b1b259138643f: crates/instr/src/bin/dsir.rs

crates/instr/src/bin/dsir.rs:
