/root/repo/target/release/deps/paper_claims-5821d8f1e8ec9507.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-5821d8f1e8ec9507: tests/paper_claims.rs

tests/paper_claims.rs:
