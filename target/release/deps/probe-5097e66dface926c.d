/root/repo/target/release/deps/probe-5097e66dface926c.d: crates/bench/src/bin/probe.rs

/root/repo/target/release/deps/probe-5097e66dface926c: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
