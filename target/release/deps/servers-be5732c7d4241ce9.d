/root/repo/target/release/deps/servers-be5732c7d4241ce9.d: crates/bench/src/bin/servers.rs

/root/repo/target/release/deps/servers-be5732c7d4241ce9: crates/bench/src/bin/servers.rs

crates/bench/src/bin/servers.rs:
