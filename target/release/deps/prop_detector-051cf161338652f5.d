/root/repo/target/release/deps/prop_detector-051cf161338652f5.d: crates/core/tests/prop_detector.rs

/root/repo/target/release/deps/prop_detector-051cf161338652f5: crates/core/tests/prop_detector.rs

crates/core/tests/prop_detector.rs:
