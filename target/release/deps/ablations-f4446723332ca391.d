/root/repo/target/release/deps/ablations-f4446723332ca391.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-f4446723332ca391: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
