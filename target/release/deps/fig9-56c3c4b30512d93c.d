/root/repo/target/release/deps/fig9-56c3c4b30512d93c.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-56c3c4b30512d93c: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
