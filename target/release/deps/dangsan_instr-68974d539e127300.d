/root/repo/target/release/deps/dangsan_instr-68974d539e127300.d: crates/instr/src/lib.rs crates/instr/src/analysis.rs crates/instr/src/builder.rs crates/instr/src/instrument.rs crates/instr/src/interp.rs crates/instr/src/ir.rs crates/instr/src/text.rs

/root/repo/target/release/deps/dangsan_instr-68974d539e127300: crates/instr/src/lib.rs crates/instr/src/analysis.rs crates/instr/src/builder.rs crates/instr/src/instrument.rs crates/instr/src/interp.rs crates/instr/src/ir.rs crates/instr/src/text.rs

crates/instr/src/lib.rs:
crates/instr/src/analysis.rs:
crates/instr/src/builder.rs:
crates/instr/src/instrument.rs:
crates/instr/src/interp.rs:
crates/instr/src/ir.rs:
crates/instr/src/text.rs:
