/root/repo/target/release/deps/prop_heap-896b39b8dc2d0feb.d: crates/heap/tests/prop_heap.rs

/root/repo/target/release/deps/prop_heap-896b39b8dc2d0feb: crates/heap/tests/prop_heap.rs

crates/heap/tests/prop_heap.rs:
