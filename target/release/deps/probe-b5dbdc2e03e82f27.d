/root/repo/target/release/deps/probe-b5dbdc2e03e82f27.d: crates/bench/src/bin/probe.rs

/root/repo/target/release/deps/probe-b5dbdc2e03e82f27: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
