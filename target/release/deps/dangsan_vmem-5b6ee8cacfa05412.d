/root/repo/target/release/deps/dangsan_vmem-5b6ee8cacfa05412.d: crates/vmem/src/lib.rs crates/vmem/src/bump.rs crates/vmem/src/layout.rs crates/vmem/src/rng.rs crates/vmem/src/space.rs

/root/repo/target/release/deps/dangsan_vmem-5b6ee8cacfa05412: crates/vmem/src/lib.rs crates/vmem/src/bump.rs crates/vmem/src/layout.rs crates/vmem/src/rng.rs crates/vmem/src/space.rs

crates/vmem/src/lib.rs:
crates/vmem/src/bump.rs:
crates/vmem/src/layout.rs:
crates/vmem/src/rng.rs:
crates/vmem/src/space.rs:
