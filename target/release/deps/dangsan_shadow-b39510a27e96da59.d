/root/repo/target/release/deps/dangsan_shadow-b39510a27e96da59.d: crates/shadow/src/lib.rs

/root/repo/target/release/deps/dangsan_shadow-b39510a27e96da59: crates/shadow/src/lib.rs

crates/shadow/src/lib.rs:
