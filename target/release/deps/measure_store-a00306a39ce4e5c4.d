/root/repo/target/release/deps/measure_store-a00306a39ce4e5c4.d: crates/bench/src/bin/measure_store.rs

/root/repo/target/release/deps/measure_store-a00306a39ce4e5c4: crates/bench/src/bin/measure_store.rs

crates/bench/src/bin/measure_store.rs:
