/root/repo/target/release/deps/fig10-2cac9f34a74c06c6.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-2cac9f34a74c06c6: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
