/root/repo/target/release/examples/multithreaded_server-8cac6e41b4a92171.d: examples/multithreaded_server.rs

/root/repo/target/release/examples/multithreaded_server-8cac6e41b4a92171: examples/multithreaded_server.rs

examples/multithreaded_server.rs:
