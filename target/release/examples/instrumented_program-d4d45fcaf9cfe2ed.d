/root/repo/target/release/examples/instrumented_program-d4d45fcaf9cfe2ed.d: examples/instrumented_program.rs

/root/repo/target/release/examples/instrumented_program-d4d45fcaf9cfe2ed: examples/instrumented_program.rs

examples/instrumented_program.rs:
