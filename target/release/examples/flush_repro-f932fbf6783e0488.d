/root/repo/target/release/examples/flush_repro-f932fbf6783e0488.d: examples/flush_repro.rs

/root/repo/target/release/examples/flush_repro-f932fbf6783e0488: examples/flush_repro.rs

examples/flush_repro.rs:
