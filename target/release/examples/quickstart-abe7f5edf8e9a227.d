/root/repo/target/release/examples/quickstart-abe7f5edf8e9a227.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-abe7f5edf8e9a227: examples/quickstart.rs

examples/quickstart.rs:
