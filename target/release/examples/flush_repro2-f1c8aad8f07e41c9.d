/root/repo/target/release/examples/flush_repro2-f1c8aad8f07e41c9.d: examples/flush_repro2.rs

/root/repo/target/release/examples/flush_repro2-f1c8aad8f07e41c9: examples/flush_repro2.rs

examples/flush_repro2.rs:
