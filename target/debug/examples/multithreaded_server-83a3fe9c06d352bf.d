/root/repo/target/debug/examples/multithreaded_server-83a3fe9c06d352bf.d: examples/multithreaded_server.rs

/root/repo/target/debug/examples/multithreaded_server-83a3fe9c06d352bf: examples/multithreaded_server.rs

examples/multithreaded_server.rs:
