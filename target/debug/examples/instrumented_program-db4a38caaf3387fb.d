/root/repo/target/debug/examples/instrumented_program-db4a38caaf3387fb.d: examples/instrumented_program.rs

/root/repo/target/debug/examples/instrumented_program-db4a38caaf3387fb: examples/instrumented_program.rs

examples/instrumented_program.rs:
