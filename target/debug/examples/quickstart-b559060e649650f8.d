/root/repo/target/debug/examples/quickstart-b559060e649650f8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b559060e649650f8: examples/quickstart.rs

examples/quickstart.rs:
