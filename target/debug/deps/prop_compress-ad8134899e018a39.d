/root/repo/target/debug/deps/prop_compress-ad8134899e018a39.d: crates/core/tests/prop_compress.rs

/root/repo/target/debug/deps/prop_compress-ad8134899e018a39: crates/core/tests/prop_compress.rs

crates/core/tests/prop_compress.rs:
