/root/repo/target/debug/deps/full_pipeline-791f7a0d4e3d081f.d: tests/full_pipeline.rs

/root/repo/target/debug/deps/full_pipeline-791f7a0d4e3d081f: tests/full_pipeline.rs

tests/full_pipeline.rs:
