/root/repo/target/debug/deps/ablations-dfdc7784ec4122af.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-dfdc7784ec4122af: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
