/root/repo/target/debug/deps/dangsan_suite-af33a4bb276ce21d.d: src/lib.rs

/root/repo/target/debug/deps/libdangsan_suite-af33a4bb276ce21d.rlib: src/lib.rs

/root/repo/target/debug/deps/libdangsan_suite-af33a4bb276ce21d.rmeta: src/lib.rs

src/lib.rs:
