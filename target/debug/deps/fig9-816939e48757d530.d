/root/repo/target/debug/deps/fig9-816939e48757d530.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-816939e48757d530: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
