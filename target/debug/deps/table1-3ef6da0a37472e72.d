/root/repo/target/debug/deps/table1-3ef6da0a37472e72.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-3ef6da0a37472e72: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
