/root/repo/target/debug/deps/dangsan_bench-247f23f4ea6c0c4f.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/ir_suite.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libdangsan_bench-247f23f4ea6c0c4f.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/ir_suite.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libdangsan_bench-247f23f4ea6c0c4f.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/ir_suite.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/ir_suite.rs:
crates/bench/src/report.rs:
