/root/repo/target/debug/deps/prop_analysis-c8e0815bc2c61e26.d: crates/instr/tests/prop_analysis.rs

/root/repo/target/debug/deps/prop_analysis-c8e0815bc2c61e26: crates/instr/tests/prop_analysis.rs

crates/instr/tests/prop_analysis.rs:
