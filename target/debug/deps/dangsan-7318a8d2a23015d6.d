/root/repo/target/debug/deps/dangsan-7318a8d2a23015d6.d: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/compress.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/hooked.rs crates/core/src/log.rs crates/core/src/object.rs crates/core/src/pool.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libdangsan-7318a8d2a23015d6.rlib: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/compress.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/hooked.rs crates/core/src/log.rs crates/core/src/object.rs crates/core/src/pool.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libdangsan-7318a8d2a23015d6.rmeta: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/compress.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/hooked.rs crates/core/src/log.rs crates/core/src/object.rs crates/core/src/pool.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/api.rs:
crates/core/src/compress.rs:
crates/core/src/config.rs:
crates/core/src/detector.rs:
crates/core/src/hooked.rs:
crates/core/src/log.rs:
crates/core/src/object.rs:
crates/core/src/pool.rs:
crates/core/src/stats.rs:
