/root/repo/target/debug/deps/dangsan_vmem-89336da53b7400b6.d: crates/vmem/src/lib.rs crates/vmem/src/bump.rs crates/vmem/src/layout.rs crates/vmem/src/rng.rs crates/vmem/src/space.rs

/root/repo/target/debug/deps/dangsan_vmem-89336da53b7400b6: crates/vmem/src/lib.rs crates/vmem/src/bump.rs crates/vmem/src/layout.rs crates/vmem/src/rng.rs crates/vmem/src/space.rs

crates/vmem/src/lib.rs:
crates/vmem/src/bump.rs:
crates/vmem/src/layout.rs:
crates/vmem/src/rng.rs:
crates/vmem/src/space.rs:
