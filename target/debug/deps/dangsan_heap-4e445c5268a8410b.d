/root/repo/target/debug/deps/dangsan_heap-4e445c5268a8410b.d: crates/heap/src/lib.rs crates/heap/src/heap.rs crates/heap/src/size_classes.rs crates/heap/src/span.rs crates/heap/src/thread_cache.rs

/root/repo/target/debug/deps/dangsan_heap-4e445c5268a8410b: crates/heap/src/lib.rs crates/heap/src/heap.rs crates/heap/src/size_classes.rs crates/heap/src/span.rs crates/heap/src/thread_cache.rs

crates/heap/src/lib.rs:
crates/heap/src/heap.rs:
crates/heap/src/size_classes.rs:
crates/heap/src/span.rs:
crates/heap/src/thread_cache.rs:
