/root/repo/target/debug/deps/prop_shadow-804755475324785a.d: crates/shadow/tests/prop_shadow.rs

/root/repo/target/debug/deps/prop_shadow-804755475324785a: crates/shadow/tests/prop_shadow.rs

crates/shadow/tests/prop_shadow.rs:
