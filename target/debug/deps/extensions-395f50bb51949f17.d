/root/repo/target/debug/deps/extensions-395f50bb51949f17.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-395f50bb51949f17: tests/extensions.rs

tests/extensions.rs:
