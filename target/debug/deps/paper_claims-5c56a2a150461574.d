/root/repo/target/debug/deps/paper_claims-5c56a2a150461574.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-5c56a2a150461574: tests/paper_claims.rs

tests/paper_claims.rs:
