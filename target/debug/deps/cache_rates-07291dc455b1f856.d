/root/repo/target/debug/deps/cache_rates-07291dc455b1f856.d: crates/bench/src/bin/cache_rates.rs

/root/repo/target/debug/deps/cache_rates-07291dc455b1f856: crates/bench/src/bin/cache_rates.rs

crates/bench/src/bin/cache_rates.rs:
