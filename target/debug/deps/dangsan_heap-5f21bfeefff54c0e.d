/root/repo/target/debug/deps/dangsan_heap-5f21bfeefff54c0e.d: crates/heap/src/lib.rs crates/heap/src/heap.rs crates/heap/src/size_classes.rs crates/heap/src/span.rs crates/heap/src/thread_cache.rs

/root/repo/target/debug/deps/libdangsan_heap-5f21bfeefff54c0e.rlib: crates/heap/src/lib.rs crates/heap/src/heap.rs crates/heap/src/size_classes.rs crates/heap/src/span.rs crates/heap/src/thread_cache.rs

/root/repo/target/debug/deps/libdangsan_heap-5f21bfeefff54c0e.rmeta: crates/heap/src/lib.rs crates/heap/src/heap.rs crates/heap/src/size_classes.rs crates/heap/src/span.rs crates/heap/src/thread_cache.rs

crates/heap/src/lib.rs:
crates/heap/src/heap.rs:
crates/heap/src/size_classes.rs:
crates/heap/src/span.rs:
crates/heap/src/thread_cache.rs:
