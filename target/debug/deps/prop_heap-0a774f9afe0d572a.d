/root/repo/target/debug/deps/prop_heap-0a774f9afe0d572a.d: crates/heap/tests/prop_heap.rs

/root/repo/target/debug/deps/prop_heap-0a774f9afe0d572a: crates/heap/tests/prop_heap.rs

crates/heap/tests/prop_heap.rs:
