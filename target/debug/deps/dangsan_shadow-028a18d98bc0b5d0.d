/root/repo/target/debug/deps/dangsan_shadow-028a18d98bc0b5d0.d: crates/shadow/src/lib.rs

/root/repo/target/debug/deps/libdangsan_shadow-028a18d98bc0b5d0.rlib: crates/shadow/src/lib.rs

/root/repo/target/debug/deps/libdangsan_shadow-028a18d98bc0b5d0.rmeta: crates/shadow/src/lib.rs

crates/shadow/src/lib.rs:
