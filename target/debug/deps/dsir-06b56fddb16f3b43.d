/root/repo/target/debug/deps/dsir-06b56fddb16f3b43.d: crates/instr/src/bin/dsir.rs

/root/repo/target/debug/deps/dsir-06b56fddb16f3b43: crates/instr/src/bin/dsir.rs

crates/instr/src/bin/dsir.rs:
