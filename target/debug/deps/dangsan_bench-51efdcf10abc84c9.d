/root/repo/target/debug/deps/dangsan_bench-51efdcf10abc84c9.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/ir_suite.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/dangsan_bench-51efdcf10abc84c9: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/ir_suite.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/ir_suite.rs:
crates/bench/src/report.rs:
