/root/repo/target/debug/deps/limitations-41973351b8decd17.d: tests/limitations.rs

/root/repo/target/debug/deps/limitations-41973351b8decd17: tests/limitations.rs

tests/limitations.rs:
