/root/repo/target/debug/deps/prop_space-0b9194f62ae985da.d: crates/vmem/tests/prop_space.rs

/root/repo/target/debug/deps/prop_space-0b9194f62ae985da: crates/vmem/tests/prop_space.rs

crates/vmem/tests/prop_space.rs:
