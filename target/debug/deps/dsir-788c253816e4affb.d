/root/repo/target/debug/deps/dsir-788c253816e4affb.d: crates/instr/src/bin/dsir.rs

/root/repo/target/debug/deps/dsir-788c253816e4affb: crates/instr/src/bin/dsir.rs

crates/instr/src/bin/dsir.rs:
