/root/repo/target/debug/deps/fig12-9a486fa962c491a1.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-9a486fa962c491a1: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
