/root/repo/target/debug/deps/dangsan_instr-91e452a983331af4.d: crates/instr/src/lib.rs crates/instr/src/analysis.rs crates/instr/src/builder.rs crates/instr/src/instrument.rs crates/instr/src/interp.rs crates/instr/src/ir.rs crates/instr/src/text.rs

/root/repo/target/debug/deps/dangsan_instr-91e452a983331af4: crates/instr/src/lib.rs crates/instr/src/analysis.rs crates/instr/src/builder.rs crates/instr/src/instrument.rs crates/instr/src/interp.rs crates/instr/src/ir.rs crates/instr/src/text.rs

crates/instr/src/lib.rs:
crates/instr/src/analysis.rs:
crates/instr/src/builder.rs:
crates/instr/src/instrument.rs:
crates/instr/src/interp.rs:
crates/instr/src/ir.rs:
crates/instr/src/text.rs:
