/root/repo/target/debug/deps/prop_equivalence-88c618f083a734d5.d: crates/instr/tests/prop_equivalence.rs

/root/repo/target/debug/deps/prop_equivalence-88c618f083a734d5: crates/instr/tests/prop_equivalence.rs

crates/instr/tests/prop_equivalence.rs:
