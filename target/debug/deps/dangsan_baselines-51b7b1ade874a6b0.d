/root/repo/target/debug/deps/dangsan_baselines-51b7b1ade874a6b0.d: crates/baselines/src/lib.rs crates/baselines/src/dangnull.rs crates/baselines/src/freesentry.rs crates/baselines/src/locked.rs crates/baselines/src/quarantine.rs

/root/repo/target/debug/deps/libdangsan_baselines-51b7b1ade874a6b0.rlib: crates/baselines/src/lib.rs crates/baselines/src/dangnull.rs crates/baselines/src/freesentry.rs crates/baselines/src/locked.rs crates/baselines/src/quarantine.rs

/root/repo/target/debug/deps/libdangsan_baselines-51b7b1ade874a6b0.rmeta: crates/baselines/src/lib.rs crates/baselines/src/dangnull.rs crates/baselines/src/freesentry.rs crates/baselines/src/locked.rs crates/baselines/src/quarantine.rs

crates/baselines/src/lib.rs:
crates/baselines/src/dangnull.rs:
crates/baselines/src/freesentry.rs:
crates/baselines/src/locked.rs:
crates/baselines/src/quarantine.rs:
