/root/repo/target/debug/deps/dangsan_shadow-64afb4aa2116a732.d: crates/shadow/src/lib.rs

/root/repo/target/debug/deps/dangsan_shadow-64afb4aa2116a732: crates/shadow/src/lib.rs

crates/shadow/src/lib.rs:
