/root/repo/target/debug/deps/fig10-fe1db1d898926cfc.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-fe1db1d898926cfc: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
