/root/repo/target/debug/deps/dangsan_instr-de87eaaee7d26cdc.d: crates/instr/src/lib.rs crates/instr/src/analysis.rs crates/instr/src/builder.rs crates/instr/src/instrument.rs crates/instr/src/interp.rs crates/instr/src/ir.rs crates/instr/src/text.rs

/root/repo/target/debug/deps/libdangsan_instr-de87eaaee7d26cdc.rlib: crates/instr/src/lib.rs crates/instr/src/analysis.rs crates/instr/src/builder.rs crates/instr/src/instrument.rs crates/instr/src/interp.rs crates/instr/src/ir.rs crates/instr/src/text.rs

/root/repo/target/debug/deps/libdangsan_instr-de87eaaee7d26cdc.rmeta: crates/instr/src/lib.rs crates/instr/src/analysis.rs crates/instr/src/builder.rs crates/instr/src/instrument.rs crates/instr/src/interp.rs crates/instr/src/ir.rs crates/instr/src/text.rs

crates/instr/src/lib.rs:
crates/instr/src/analysis.rs:
crates/instr/src/builder.rs:
crates/instr/src/instrument.rs:
crates/instr/src/interp.rs:
crates/instr/src/ir.rs:
crates/instr/src/text.rs:
