/root/repo/target/debug/deps/effectiveness-a8599c054de4736e.d: crates/bench/src/bin/effectiveness.rs

/root/repo/target/debug/deps/effectiveness-a8599c054de4736e: crates/bench/src/bin/effectiveness.rs

crates/bench/src/bin/effectiveness.rs:
