/root/repo/target/debug/deps/dangsan_baselines-b1076c0a6ba2441c.d: crates/baselines/src/lib.rs crates/baselines/src/dangnull.rs crates/baselines/src/freesentry.rs crates/baselines/src/locked.rs crates/baselines/src/quarantine.rs

/root/repo/target/debug/deps/dangsan_baselines-b1076c0a6ba2441c: crates/baselines/src/lib.rs crates/baselines/src/dangnull.rs crates/baselines/src/freesentry.rs crates/baselines/src/locked.rs crates/baselines/src/quarantine.rs

crates/baselines/src/lib.rs:
crates/baselines/src/dangnull.rs:
crates/baselines/src/freesentry.rs:
crates/baselines/src/locked.rs:
crates/baselines/src/quarantine.rs:
