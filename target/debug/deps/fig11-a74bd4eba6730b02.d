/root/repo/target/debug/deps/fig11-a74bd4eba6730b02.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-a74bd4eba6730b02: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
