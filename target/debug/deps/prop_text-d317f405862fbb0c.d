/root/repo/target/debug/deps/prop_text-d317f405862fbb0c.d: crates/instr/tests/prop_text.rs

/root/repo/target/debug/deps/prop_text-d317f405862fbb0c: crates/instr/tests/prop_text.rs

crates/instr/tests/prop_text.rs:
