/root/repo/target/debug/deps/dangsan_workloads-20b3d0f55489cb9c.d: crates/workloads/src/lib.rs crates/workloads/src/cost.rs crates/workloads/src/env.rs crates/workloads/src/exploits.rs crates/workloads/src/parsec.rs crates/workloads/src/profiles.rs crates/workloads/src/server.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/dangsan_workloads-20b3d0f55489cb9c: crates/workloads/src/lib.rs crates/workloads/src/cost.rs crates/workloads/src/env.rs crates/workloads/src/exploits.rs crates/workloads/src/parsec.rs crates/workloads/src/profiles.rs crates/workloads/src/server.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cost.rs:
crates/workloads/src/env.rs:
crates/workloads/src/exploits.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/profiles.rs:
crates/workloads/src/server.rs:
crates/workloads/src/spec.rs:
