/root/repo/target/debug/deps/prop_detector-f447bd8a387a6994.d: crates/core/tests/prop_detector.rs

/root/repo/target/debug/deps/prop_detector-f447bd8a387a6994: crates/core/tests/prop_detector.rs

crates/core/tests/prop_detector.rs:
