/root/repo/target/debug/deps/measure_store-b14f148eb4e98f93.d: crates/bench/src/bin/measure_store.rs

/root/repo/target/debug/deps/measure_store-b14f148eb4e98f93: crates/bench/src/bin/measure_store.rs

crates/bench/src/bin/measure_store.rs:
