/root/repo/target/debug/deps/concurrency-c3f63c9cb5d29e47.d: tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-c3f63c9cb5d29e47: tests/concurrency.rs

tests/concurrency.rs:
