/root/repo/target/debug/deps/dangsan_suite-75eab27c62973c57.d: src/lib.rs

/root/repo/target/debug/deps/dangsan_suite-75eab27c62973c57: src/lib.rs

src/lib.rs:
