/root/repo/target/debug/deps/dangsan-c5a63b5b7f2a50ca.d: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/compress.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/hooked.rs crates/core/src/log.rs crates/core/src/object.rs crates/core/src/pool.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/dangsan-c5a63b5b7f2a50ca: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/compress.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/hooked.rs crates/core/src/log.rs crates/core/src/object.rs crates/core/src/pool.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/api.rs:
crates/core/src/compress.rs:
crates/core/src/config.rs:
crates/core/src/detector.rs:
crates/core/src/hooked.rs:
crates/core/src/log.rs:
crates/core/src/object.rs:
crates/core/src/pool.rs:
crates/core/src/stats.rs:
