/root/repo/target/debug/deps/reproduce_all-f76091aa401dc5d4.d: crates/bench/src/bin/reproduce_all.rs

/root/repo/target/debug/deps/reproduce_all-f76091aa401dc5d4: crates/bench/src/bin/reproduce_all.rs

crates/bench/src/bin/reproduce_all.rs:
