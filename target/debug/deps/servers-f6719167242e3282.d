/root/repo/target/debug/deps/servers-f6719167242e3282.d: crates/bench/src/bin/servers.rs

/root/repo/target/debug/deps/servers-f6719167242e3282: crates/bench/src/bin/servers.rs

crates/bench/src/bin/servers.rs:
