/root/repo/target/debug/deps/dsir_programs-56ba3327836e095f.d: tests/dsir_programs.rs

/root/repo/target/debug/deps/dsir_programs-56ba3327836e095f: tests/dsir_programs.rs

tests/dsir_programs.rs:
