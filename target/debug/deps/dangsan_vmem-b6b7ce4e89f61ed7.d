/root/repo/target/debug/deps/dangsan_vmem-b6b7ce4e89f61ed7.d: crates/vmem/src/lib.rs crates/vmem/src/bump.rs crates/vmem/src/layout.rs crates/vmem/src/rng.rs crates/vmem/src/space.rs

/root/repo/target/debug/deps/libdangsan_vmem-b6b7ce4e89f61ed7.rlib: crates/vmem/src/lib.rs crates/vmem/src/bump.rs crates/vmem/src/layout.rs crates/vmem/src/rng.rs crates/vmem/src/space.rs

/root/repo/target/debug/deps/libdangsan_vmem-b6b7ce4e89f61ed7.rmeta: crates/vmem/src/lib.rs crates/vmem/src/bump.rs crates/vmem/src/layout.rs crates/vmem/src/rng.rs crates/vmem/src/space.rs

crates/vmem/src/lib.rs:
crates/vmem/src/bump.rs:
crates/vmem/src/layout.rs:
crates/vmem/src/rng.rs:
crates/vmem/src/space.rs:
