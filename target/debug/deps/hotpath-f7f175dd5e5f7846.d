/root/repo/target/debug/deps/hotpath-f7f175dd5e5f7846.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/debug/deps/hotpath-f7f175dd5e5f7846: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:
