#!/usr/bin/env bash
# Render the cross-defense comparison as a markdown table from a scaling
# bench JSON (the "defenses" section scaling.rs emits: one row per
# defense class with throughput, overhead vs the uninstrumented
# baseline, metadata bytes, and the detection guarantee). No cargo,
# shell + awk only — used by the EXPERIMENTS.md table and the CI
# arm-comparison artifact.
#
# Usage: scripts/defense_table.sh [SCALING_JSON]   (default BENCH_scaling.json)
set -euo pipefail

cd "$(dirname "$0")/.."

src=${1:-BENCH_scaling.json}
if [[ ! -f "$src" ]]; then
    echo "defense_table: no $src; generate one:" >&2
    echo "    cargo run --release -p dangsan-bench --bin scaling -- --quick --out $src" >&2
    exit 1
fi

awk '
    function num(s) { sub(/^[^:]*: */, "", s); gsub(/[",]/, "", s); return s }
    function str(s) { sub(/^[^:]*: *"/, "", s); sub(/",?$/, "", s); return s }
    BEGIN {
        print "| defense | req/s | overhead | metadata bytes | tag bits | detection guarantee |"
        print "| --- | ---: | ---: | ---: | ---: | --- |"
    }
    index($0, "\"defenses\": {") { in_section = 1; next }
    !in_section { next }
    /^    "[^"]+": \{/ {
        name = $0; sub(/^ +"/, "", name); sub(/": \{.*/, "", name)
        ops = ""; overhead = ""; meta = ""; bits = "—"; guarantee = ""
        next
    }
    /"ops_per_sec"/ { ops = num($0) }
    /"overhead_vs_baseline"/ { overhead = num($0) }
    /"metadata_bytes"/ { meta = num($0) }
    /"tag_bits"/ { bits = num($0) }
    /"guarantee"/ { guarantee = str($0) }
    /^    \}/ && name != "" {
        printf "| %s | %.0f | %.2fx | %.0f | %s | %s |\n", \
            name, ops, overhead, meta, bits, guarantee
        name = ""
    }
    /^  \}/ { in_section = 0 }
' "$src"
