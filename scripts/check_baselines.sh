#!/usr/bin/env bash
# Lint the committed BENCH_*.json baselines (no cargo, shell + awk only —
# runs in seconds, called from scripts/verify.sh and CI).
#
# Usage: scripts/check_baselines.sh
#
# Fails if:
#   - BENCH_hotpath.json is missing, unparsable, missing any of the
#     eleven gated benches, or locks in a sub-1.0x speedup on a core bench
#     (registerptr, ptr2obj, malloc_free, invalidate), a deferred-free
#     bench (free_many_objs, free_while_reg — the deferred sweep must
#     keep mutator-visible free cheaper than the inline walk), or the
#     routed bench (malloc_free_thin — adaptive routing must beat
#     forced-Standard on a clean-site churn, or it has no reason to
#     exist),
#   - either BENCH_*.json carries the wrong schema string,
#   - BENCH_scaling.json is missing, unparsable, missing its derived
#     figures / recorded core count, or missing the per-cell queue
#     observability keys (sweep_steals, sweep_shard_peak_0, p50_ns,
#     p99_ns) the scaling schema now carries,
#   - the committed scaling numbers miss their floors. The 4t/1t floor is
#     keyed on the baseline's own recorded "cores" value, because a
#     1-core machine cannot honestly show a 4-thread speedup:
#       cores >= 4  ->  4t/1t >= 1.8   (the paper-shape claim)
#       cores 2..3  ->  4t/1t >= 0.9   (must not collapse under threads)
#       cores == 1  ->  4t/1t >= 0.7   (oversubscription must stay cheap)
#     Override with VERIFY_SCALING_MIN=<float>. The thread-cached
#     allocator must also hold >= 0.95x the locked path at 1 thread
#     (override with VERIFY_SCALING_LOCKED_MIN),
#   - BENCH_scaling.json's cross-defense rows are missing or malformed:
#     every arm in the defense enum (baseline dangsan dangnull xtag
#     implicit-id pa-mac) must carry a parsable ops_per_sec and a
#     parsable overhead_vs_baseline >= 0,
#   - BENCH_server.json's tagging-arm capacity rows (xtag implicit-id
#     pa-mac) miss their overhead_vs_baseline >= 0,
#   - BENCH_server.json is missing, unparsable, carries the wrong schema,
#     or misses the cores-keyed dangsan/baseline capacity-ratio floor
#     (instrumentation costs throughput, but only so much):
#       cores >= 4  ->  ratio >= 0.12
#       cores 2..3  ->  ratio >= 0.10
#       cores == 1  ->  ratio >= 0.08
#     Override with VERIFY_SERVER_MIN=<float>. The open-loop latency
#     percentiles (p50/p99/p999) and session-churn count must be present
#     and parsable; their magnitudes are machine-shaped, so verify.sh
#     holds the regression line on them, not this lint.
set -euo pipefail

cd "$(dirname "$0")/.."

HOTPATH_BENCHES="registerptr ptr2obj malloc_free invalidate \
                 free_many_ptrs free_many_objs free_while_reg \
                 sweep_total malloc_free_thin trace_off metrics_off"
CORE_BENCHES="registerptr ptr2obj malloc_free invalidate"
# Deferred-free benches: committed with deferred_sweep on, the speedup
# column is deferred-over-inline on identical free traffic, so anything
# below 1.0 means the deferred sweep failed to make free cheaper.
DEFERRED_BENCHES="free_many_objs free_while_reg"
# Routed bench: the speedup column is site-policy-on over forced-Standard
# on an identical clean-site churn; below 1.0 means the Thin fast path
# failed to reclaim the work it exists to skip.
ROUTED_BENCHES="malloc_free_thin"
# The cross-defense arm enum: one row per defense class in the scaling
# bench's "defenses" section. Must match scaling.rs defense_arms().
DEFENSE_ARMS="baseline dangsan dangnull xtag implicit-id pa-mac"
# The tagging arms that carry capacity rows in BENCH_server.json.
TAGGING_ARMS="xtag implicit-id pa-mac"

status=0

# Extract the first numeric value following a quoted key from a pretty-
# printed JSON file (our hand-rolled writer emits one key per line).
# Usage: num_of FILE KEY [SECTION] — with SECTION, start matching only
# after the section key has been seen.
num_of() {
    awk -v key="\"$2\"" -v section="\"${3-}\"" '
        section != "\"\"" && index($0, section) { in_section = 1 }
        (section == "\"\"" || in_section) && index($0, key) {
            for (i = 1; i <= NF; i++) if (index($i, key)) {
                v = $(i + 1); gsub(/[",]/, "", v); print v; exit
            }
        }
    ' "$1"
}

# Like num_of, but two anchors deep: match KEY only after both the
# SECTION key and the ARM key inside it have been seen (our writer
# emits rows in declaration order, one key per line).
# Usage: row_num_of FILE SECTION ARM KEY
row_num_of() {
    awk -v section="\"$2\"" -v arm="\"$3\"" -v key="\"$4\"" '
        index($0, section) { in_section = 1 }
        in_section && index($0, arm) { in_arm = 1 }
        in_arm && index($0, key) {
            for (i = 1; i <= NF; i++) if (index($i, key)) {
                v = $(i + 1); gsub(/[",]/, "", v); print v; exit
            }
        }
    ' "$1"
}

require_file() {
    if [[ ! -f "$1" ]]; then
        echo "check_baselines: FAIL — no committed $1; regenerate it:" >&2
        echo "    $2" >&2
        return 1
    fi
}

check_schema() {
    # check_schema FILE EXPECTED — the baseline must declare the schema
    # string its readers (this script, verify.sh awk extraction) parse.
    local got
    got=$(awk -v key='"schema"' '
        index($0, key) {
            for (i = 1; i <= NF; i++) if (index($i, key)) {
                v = $(i + 1); gsub(/[",]/, "", v); print v; exit
            }
        }
    ' "$1")
    if [[ "$got" != "$2" ]]; then
        echo "check_baselines: FAIL — $1 schema is '${got:-missing}', expected '$2'" >&2
        return 1
    fi
    printf "check_baselines: %-32s OK — %s (%s)\n" "schema" "$got" "$1"
}

check_num() {
    # check_num FILE LABEL VALUE FLOOR — VALUE must parse and be >= FLOOR.
    awk -v file="$1" -v label="$2" -v v="$3" -v floor="$4" 'BEGIN {
        if (v == "" || v + 0 != v) {
            printf "check_baselines: FAIL — %s has no parsable %s (got \x27%s\x27)\n", file, label, v
            exit 1
        }
        if (v + 0 < floor + 0) {
            printf "check_baselines: FAIL — %s: %s = %.3f below floor %.3f\n", file, label, v, floor
            exit 1
        }
        printf "check_baselines: %-32s OK — %.3f >= %.3f (%s)\n", label, v, floor, file
    }'
}

# --- BENCH_hotpath.json ---------------------------------------------------
hotpath=BENCH_hotpath.json
require_file "$hotpath" "cargo run --release -p dangsan-bench --bin hotpath" || status=1
if [[ -f "$hotpath" ]]; then
    check_schema "$hotpath" "dangsan-hotpath-v1" || status=1
    for bench in $HOTPATH_BENCHES; do
        v=$(num_of "$hotpath" speedup "$bench")
        check_num "$hotpath" "$bench.speedup" "$v" 0 || status=1
    done
    for bench in $CORE_BENCHES $DEFERRED_BENCHES $ROUTED_BENCHES; do
        v=$(num_of "$hotpath" speedup "$bench")
        check_num "$hotpath" "$bench.speedup" "$v" 1.0 || status=1
    done
fi

# --- BENCH_scaling.json ---------------------------------------------------
scaling=BENCH_scaling.json
require_file "$scaling" "cargo run --release -p dangsan-bench --bin scaling" || status=1
if [[ -f "$scaling" ]]; then
    check_schema "$scaling" "dangsan-scaling-v1" || status=1
    cores=$(num_of "$scaling" cores)
    check_num "$scaling" "cores" "$cores" 1 || status=1
    if [[ -n "${VERIFY_SCALING_MIN-}" ]]; then
        floor4=$VERIFY_SCALING_MIN
    else
        floor4=$(awk -v c="${cores:-0}" 'BEGIN {
            if (c >= 4) print 1.8; else if (c >= 2) print 0.9; else print 0.7
        }')
    fi
    v=$(num_of "$scaling" dangsan_speedup_4t_over_1t)
    check_num "$scaling" "dangsan_speedup_4t_over_1t" "$v" "$floor4" || status=1
    v=$(num_of "$scaling" cached_over_locked_1t)
    check_num "$scaling" "cached_over_locked_1t" "$v" \
        "${VERIFY_SCALING_LOCKED_MIN:-0.95}" || status=1
    v=$(num_of "$scaling" dangsan_parallel_efficiency_4t)
    check_num "$scaling" "dangsan_parallel_efficiency_4t" "$v" \
        "$(awk -v f="$floor4" 'BEGIN { print f / 4 }')" || status=1
    # Schema lint: the per-cell observability keys added with the routed
    # bench rows must be present in the dangsan arm (floor 0 — presence
    # and parsability, not magnitude: steal counts and queue depths are
    # load-shaped, latencies are machine-shaped).
    for key in sweep_steals sweep_shard_peak_0 p50_ns p99_ns; do
        v=$(num_of "$scaling" "$key" dangsan)
        check_num "$scaling" "dangsan.t1.$key" "$v" 0 || status=1
    done
    # Cross-defense rows: every arm in the enum must be present with a
    # parsable throughput and overhead ratio (floor 0 — presence and
    # parsability; the ratios themselves are machine-shaped).
    for arm in $DEFENSE_ARMS; do
        v=$(row_num_of "$scaling" defenses "$arm" ops_per_sec)
        check_num "$scaling" "defenses.$arm.ops_per_sec" "$v" 0 || status=1
        v=$(row_num_of "$scaling" defenses "$arm" overhead_vs_baseline)
        check_num "$scaling" "defenses.$arm.overhead_vs_baseline" "$v" 0 || status=1
    done
fi

# --- BENCH_server.json ----------------------------------------------------
server=BENCH_server.json
require_file "$server" "cargo run --release -p dangsan-bench --bin server" || status=1
if [[ -f "$server" ]]; then
    check_schema "$server" "dangsan-server-v1" || status=1
    cores=$(num_of "$server" cores)
    check_num "$server" "cores" "$cores" 1 || status=1
    if [[ -n "${VERIFY_SERVER_MIN-}" ]]; then
        floor_rps=$VERIFY_SERVER_MIN
    else
        floor_rps=$(awk -v c="${cores:-0}" 'BEGIN {
            if (c >= 4) print 0.12; else if (c >= 2) print 0.10; else print 0.08
        }')
    fi
    v=$(num_of "$server" dangsan_over_baseline_rps)
    check_num "$server" "dangsan_over_baseline_rps" "$v" "$floor_rps" || status=1
    # Schema lint: the open-loop latency figures and the per-class
    # breakdown keys must be present and parsable (floor: percentiles
    # must be measured, counts merely present).
    for key in dangsan_p50_ns dangsan_p99_ns dangsan_p999_ns; do
        v=$(num_of "$server" "$key")
        check_num "$server" "$key" "$v" 1 || status=1
    done
    for key in offered_rps sessions_churned; do
        v=$(num_of "$server" "$key" dangsan)
        check_num "$server" "dangsan.open_loop.$key" "$v" 0 || status=1
    done
    # Tagging-arm capacity rows: each must be present with a parsable
    # capacity and overhead ratio.
    for arm in $TAGGING_ARMS; do
        v=$(row_num_of "$server" arms "$arm" capacity_rps)
        check_num "$server" "arms.$arm.capacity_rps" "$v" 0 || status=1
        v=$(row_num_of "$server" arms "$arm" overhead_vs_baseline)
        check_num "$server" "arms.$arm.overhead_vs_baseline" "$v" 0 || status=1
    done
fi

[[ $status -eq 0 ]] || exit 1
echo "check_baselines: all baselines OK"
