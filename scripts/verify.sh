#!/usr/bin/env bash
# Repo verification: tier-1 build/lint/tests plus a quick hot-path bench
# pass gated against the committed BENCH_hotpath.json baseline.
#
# Usage: scripts/verify.sh
#
# Fails if:
#   - the tier-1 suite (build, clippy -D warnings, tests) fails,
#   - the committed baseline is missing, unparsable, or missing a bench,
#   - the committed baseline locks in a sub-1.0x speedup on a core bench
#     (the caches must be a net win on every path they touch),
#   - the current quick run's same-run speedup regresses more than 20%
#     relative to the committed baseline's on any bench (the now/base
#     ratio is printed per bench),
#   - the flight recorder's Off mode fails its overhead budget: the
#     trace_off bench's same-run ratio (trace Off throughput / traced
#     throughput) must stay >= 0.98, i.e. disabling tracing must remove
#     its cost to within 2%.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo clippy -D warnings =="
cargo clippy -q --all-targets -- -D warnings

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== hotpath --quick =="
tmp_json=$(mktemp /tmp/hotpath.XXXXXX.json)
trap 'rm -f "$tmp_json"' EXIT
cargo run --release -p dangsan-bench --bin hotpath -- --quick --out "$tmp_json"

ALL_BENCHES="registerptr ptr2obj malloc_free invalidate \
             free_many_ptrs free_many_objs free_while_reg trace_off"

baseline=BENCH_hotpath.json
if [[ ! -f "$baseline" ]]; then
    echo "verify: FAIL — no committed $baseline baseline" >&2
    echo "verify: run the full bench and commit its output:" >&2
    echo "    cargo run --release -p dangsan-bench --bin hotpath" >&2
    exit 1
fi

# Extract one bench's speedup from a hotpath JSON: the value on the
# first "speedup" line after the bench's key. Empty output = that bench
# is missing or the file is not hotpath JSON.
speedup_of() {
    awk -v bench="\"$2\"" '
        index($0, bench) { in_bench = 1 }
        in_bench && /"speedup"/ {
            gsub(/[",]/, "", $2); print $2; exit
        }
    ' "$1"
}

# Gate 0 — the baseline itself must parse and carry every gated bench;
# a truncated, hand-edited or schema-drifted baseline fails loudly here
# rather than silently skipping gates.
parse_errors=0
for bench in $ALL_BENCHES; do
    base=$(speedup_of "$baseline" "$bench")
    if [[ -z "$base" ]] || ! awk -v v="$base" 'BEGIN { exit (v+0 > 0 ? 0 : 1) }'; then
        echo "verify: FAIL — $baseline has no parsable \"$bench\" speedup (got '$base')" >&2
        parse_errors=1
    fi
done
if [[ $parse_errors -ne 0 ]]; then
    echo "verify: FAIL — committed $baseline is unusable; regenerate it:" >&2
    echo "    cargo run --release -p dangsan-bench --bin hotpath" >&2
    exit 1
fi

status=0

# Gate 1 — the committed baseline must show every core bench at >= 1.0x:
# the caches must be a net win (or at worst a wash) on every path they
# touch before a baseline may be locked in. (The free_* benches measure
# the whole free-path rework and are gated relatively below.)
for bench in registerptr ptr2obj malloc_free invalidate; do
    base=$(speedup_of "$baseline" "$bench")
    awk -v bench="$bench" -v base="$base" 'BEGIN {
        if (base < 1.0) {
            printf "verify: FAIL — committed baseline locks in a sub-1.0 %s speedup (%.2f)\n", bench, base
            exit 1
        }
        printf "verify: %-15s baseline OK — committed speedup %.2f >= 1.0\n", bench, base
    }' || status=1
done

# Gate 2 — the current quick run must stay within 20% of the committed
# baseline's speedup on every bench (same-run on/off ratios, so machine
# noise largely cancels; quick mode is still too noisy for an absolute
# gate here — gate 1 holds the absolute line on the committed numbers).
# The printed ratio is now/base: the exact number this gate compares
# against its 0.80 floor.
for bench in $ALL_BENCHES; do
    base=$(speedup_of "$baseline" "$bench")
    now=$(speedup_of "$tmp_json" "$bench")
    if [[ -z "$now" ]]; then
        echo "verify: FAIL — current quick run produced no \"$bench\" speedup" >&2
        status=1
        continue
    fi
    awk -v bench="$bench" -v base="$base" -v now="$now" 'BEGIN {
        ratio = now / base
        if (ratio < 0.8) {
            printf "verify: FAIL — %s speedup regressed >20%% vs baseline: now %.2f / base %.2f = ratio %.3f < 0.800\n", bench, now, base, ratio
            exit 1
        }
        printf "verify: %-15s OK — now %.2f / base %.2f = ratio %.3f >= 0.800\n", bench, now, base, ratio
    }' || status=1
done

# Gate 3 — trace_overhead: the flight recorder's Off mode must be free.
# trace_off's speedup column is a same-run ratio measured by this very
# quick run (trace_level=Off throughput over trace_level=Lifecycles
# throughput on an identical lifecycle loop), so machine noise cancels
# and the 2% budget is checkable on a loaded machine. Below 0.98 means
# the Off path is paying for tracing it is not doing.
now=$(speedup_of "$tmp_json" trace_off)
awk -v now="$now" 'BEGIN {
    if (now < 0.98) {
        printf "verify: FAIL — trace_overhead: Off/traced ratio %.3f < 0.980 (trace_level=Off is not free)\n", now
        exit 1
    }
    printf "verify: trace_overhead   OK — Off/traced ratio %.3f >= 0.980\n", now
}' || status=1

[[ $status -eq 0 ]] || exit 1

echo "verify: all checks passed"
