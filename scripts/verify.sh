#!/usr/bin/env bash
# Repo verification: tier-1 build/tests plus a quick hot-path bench pass
# gated against the committed BENCH_hotpath.json baseline.
#
# Usage: scripts/verify.sh
#
# Fails if the tier-1 suite fails, if the committed baseline itself shows
# any of the four core benches below 1.0x (a sub-1.0 baseline must never
# be locked in — it means the caches are a net loss on that path), or if
# the current quick run's cache speedup (caches-on / caches-off within
# the same run, so machine-load noise cancels) regresses more than 20%
# below the committed baseline's on any bench.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== hotpath --quick =="
tmp_json=$(mktemp /tmp/hotpath.XXXXXX.json)
trap 'rm -f "$tmp_json"' EXIT
cargo run --release -p dangsan-bench --bin hotpath -- --quick --out "$tmp_json"

baseline=BENCH_hotpath.json
if [[ ! -f "$baseline" ]]; then
    echo "verify: no committed $baseline — run the full bench and commit it:" >&2
    echo "    cargo run --release -p dangsan-bench --bin hotpath" >&2
    exit 1
fi

# Extract one bench's cache speedup from a hotpath JSON: the value on
# the first "speedup" line after the bench's key.
speedup_of() {
    awk -v bench="\"$2\"" '
        index($0, bench) { in_bench = 1 }
        in_bench && /"speedup"/ {
            gsub(/[",]/, "", $2); print $2; exit
        }
    ' "$1"
}

status=0

# Gate 1 — the committed baseline must show every core bench at >= 1.0x:
# the caches must be a net win (or at worst a wash) on every path they
# touch before a baseline may be locked in. (The free_* benches measure
# the whole free-path rework and are gated relatively below.)
for bench in registerptr ptr2obj malloc_free invalidate; do
    base=$(speedup_of "$baseline" "$bench")
    if [[ -z "$base" ]]; then
        echo "verify: could not parse $bench speedup from $baseline" >&2
        exit 1
    fi
    awk -v bench="$bench" -v base="$base" 'BEGIN {
        if (base < 1.0) {
            printf "verify: FAIL — committed baseline locks in a sub-1.0 %s speedup (%.2f)\n", bench, base
            exit 1
        }
        printf "verify: %-15s baseline OK — committed speedup %.2f >= 1.0\n", bench, base
    }' || status=1
done

# Gate 2 — the current quick run must stay within 20% of the committed
# baseline's speedup on every bench (same-run on/off ratios, so machine
# noise largely cancels; quick mode is still too noisy for an absolute
# gate here — gate 1 holds the absolute line on the committed numbers).
for bench in registerptr ptr2obj malloc_free invalidate \
             free_many_ptrs free_many_objs free_while_reg; do
    base=$(speedup_of "$baseline" "$bench")
    now=$(speedup_of "$tmp_json" "$bench")
    if [[ -z "$base" || -z "$now" ]]; then
        echo "verify: could not parse $bench speedup (baseline='$base', current='$now')" >&2
        exit 1
    fi
    awk -v bench="$bench" -v base="$base" -v now="$now" 'BEGIN {
        floor = 0.8 * base
        if (now < floor) {
            printf "verify: FAIL — %s cache speedup regressed >20%% (%.2f < floor %.2f, baseline %.2f)\n", bench, now, floor, base
            exit 1
        }
        printf "verify: %-15s OK — speedup %.2f within 20%% of baseline %.2f\n", bench, now, base
    }' || status=1
done
[[ $status -eq 0 ]] || exit 1

echo "verify: all checks passed"
