#!/usr/bin/env bash
# Repo verification: tier-1 build/lint/tests, baseline lint, repo-hygiene
# guard, and (full mode) quick bench passes gated against the committed
# BENCH_hotpath.json / BENCH_scaling.json baselines.
#
# Usage:
#   scripts/verify.sh           # full: tier-1 + baseline lint + bench gates
#   scripts/verify.sh --fast    # tier-1 + baseline lint only (no bench runs)
#   CI_FAST=1 scripts/verify.sh # same as --fast (for CI environment blocks)
#
# Tunables:
#   VERIFY_BENCH_TOL   Relative tolerance (percent) for the current-run
#                      bench gates, default 20: a bench fails when its
#                      same-run speedup drops below (1 - TOL/100) x the
#                      committed baseline's. Raise on noisy shared
#                      runners, e.g. VERIFY_BENCH_TOL=35 scripts/verify.sh.
#   VERIFY_SCALING_MIN Override the cores-keyed 4t/1t scaling floor
#                      (see scripts/check_baselines.sh for the keying).
#
# Fails if:
#   - the tier-1 suite (build, clippy -D warnings, tests) fails,
#   - the bounded differential-fuzz campaign finds any divergence
#     (VERIFY_FUZZ_PROGRAMS overrides the 150-program default; 0 skips),
#   - scripts/check_baselines.sh rejects a committed BENCH_*.json
#     (missing, unparsable, missing a gated figure, sub-1.0 core-bench
#     speedup, or scaling floors missed),
#   - a tracked file matches .gitignore (stale artifacts must stay
#     untracked once ignored),
#   - [full mode] the current hotpath quick run regresses more than
#     VERIFY_BENCH_TOL% vs the committed baseline on any bench,
#   - [full mode] the trace_off same-run ratio drops below 0.98 (the
#     flight recorder's Off mode must stay free),
#   - [full mode] the metrics_off same-run ratio drops below 0.98 (the
#     telemetry plane's Off mode must stay free too),
#   - [full mode] the current scaling quick run misses the cores-keyed
#     4t/1t floor or the 0.95x cached-vs-locked 1-thread floor (both
#     scaled by VERIFY_BENCH_TOL like the hotpath gates),
#   - [full mode] the current server quick run regresses its
#     dangsan/baseline capacity ratio vs the committed BENCH_server.json
#     beyond the tolerance, or its open-loop p50 grows beyond the
#     double-tolerance latency budget (latency gates print the now/base
#     ratio whether they pass or fail; the queueing-dominated p99/p999
#     tails are printed as INFO and gated for presence only).
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
[[ "${1-}" == "--fast" || "${CI_FAST-}" == "1" ]] && fast=1

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo clippy -D warnings =="
cargo clippy -q --all-targets -- -D warnings

echo "== tier-1: cargo test -q =="
cargo test -q

# The fixed-seed corpus replay and a bounded fixed-seed campaign already
# ran inside cargo test (tests/fuzz_corpus.rs, instr prop_fuzz_diff); this
# runs the standalone driver on a further slice so verify covers more of
# the seed space than the offline suite alone. Override the count with
# VERIFY_FUZZ_PROGRAMS (0 skips).
fuzz_programs=${VERIFY_FUZZ_PROGRAMS:-150}
fuzz_seed=424242
if [[ "$fuzz_programs" != "0" ]]; then
    echo "== differential fuzz: fuzz_diff --programs $fuzz_programs =="
    if ! cargo run --release -q -p dangsan-bench --bin fuzz_diff -- \
        --programs "$fuzz_programs" --seed "$fuzz_seed" --quiet; then
        # Name the exact campaign so a failure reproduces offline without
        # reading this script: base seed, seed range, and the arm matrix.
        echo "verify: FAIL — differential fuzz diverged" >&2
        echo "verify: base seed $fuzz_seed, seeds $fuzz_seed..$((fuzz_seed + fuzz_programs - 1))" >&2
        echo "verify: arms: $(cargo run --release -q -p dangsan-bench --bin fuzz_diff -- --list-arms)" >&2
        echo "verify: reproduce: cargo run --release -p dangsan-bench --bin fuzz_diff -- --programs $fuzz_programs --seed $fuzz_seed" >&2
        exit 1
    fi
fi

echo "== baseline lint: scripts/check_baselines.sh =="
scripts/check_baselines.sh

echo "== repo hygiene: no tracked-but-ignored files =="
if tracked_ignored=$(git ls-files -ci --exclude-standard) && [[ -n "$tracked_ignored" ]]; then
    echo "verify: FAIL — tracked files matching .gitignore (git rm --cached them):" >&2
    echo "$tracked_ignored" >&2
    exit 1
fi
echo "verify: working tree clean of tracked-but-ignored files"

if [[ $fast -eq 1 ]]; then
    echo "verify: fast mode — bench gates skipped"
    echo "verify: all checks passed"
    exit 0
fi

tol=${VERIFY_BENCH_TOL:-20}
floor=$(awk -v t="$tol" 'BEGIN { printf "%.3f", 1 - t / 100 }')
echo "== bench gates: tolerance ${tol}% (current/baseline floor ${floor}) =="

ALL_BENCHES="registerptr ptr2obj malloc_free invalidate \
             free_many_ptrs free_many_objs free_while_reg \
             sweep_total malloc_free_thin trace_off metrics_off"

echo "== hotpath --quick =="
tmp_hotpath=$(mktemp /tmp/hotpath.XXXXXX.json)
tmp_scaling=$(mktemp /tmp/scaling.XXXXXX.json)
trap 'rm -f "$tmp_hotpath" "$tmp_scaling"' EXIT
cargo run --release -p dangsan-bench --bin hotpath -- --quick --out "$tmp_hotpath"

# Extract one bench's speedup from a hotpath JSON: the value on the
# first "speedup" line after the bench's key. Empty output = that bench
# is missing or the file is not hotpath JSON.
speedup_of() {
    awk -v bench="\"$2\"" '
        index($0, bench) { in_bench = 1 }
        in_bench && /"speedup"/ {
            gsub(/[",]/, "", $2); print $2; exit
        }
    ' "$1"
}

status=0

# Gate: the current quick run must stay within the tolerance of the
# committed baseline's speedup on every bench (same-run on/off ratios, so
# machine noise largely cancels; check_baselines.sh holds the absolute
# line on the committed numbers). The printed ratio is now/base: the
# exact number this gate compares against its floor.
for bench in $ALL_BENCHES; do
    base=$(speedup_of BENCH_hotpath.json "$bench")
    now=$(speedup_of "$tmp_hotpath" "$bench")
    if [[ -z "$now" ]]; then
        echo "verify: FAIL — current quick run produced no \"$bench\" speedup" >&2
        status=1
        continue
    fi
    awk -v bench="$bench" -v base="$base" -v now="$now" -v floor="$floor" 'BEGIN {
        ratio = now / base
        if (ratio < floor) {
            printf "verify: FAIL — %s speedup regressed vs baseline: now %.2f / base %.2f = ratio %.3f < %.3f\n", bench, now, base, ratio, floor
            exit 1
        }
        printf "verify: %-15s OK — now %.2f / base %.2f = ratio %.3f >= %.3f\n", bench, now, base, ratio, floor
    }' || status=1
done

# Gate: trace_overhead — the flight recorder's Off mode must be free.
# trace_off's speedup column is a same-run ratio (trace_level=Off
# throughput over traced throughput on an identical loop), so the 2%
# budget is checkable on a loaded machine.
now=$(speedup_of "$tmp_hotpath" trace_off)
awk -v now="$now" 'BEGIN {
    if (now < 0.98) {
        printf "verify: FAIL — trace_overhead: Off/traced ratio %.3f < 0.980 (trace_level=Off is not free)\n", now
        exit 1
    }
    printf "verify: trace_overhead   OK — Off/traced ratio %.3f >= 0.980\n", now
}' || status=1

# Gate: metrics_overhead — the telemetry plane's Off mode must be free.
# metrics_off's speedup column is a same-run ratio (metrics=false
# throughput over sampler-live throughput on an identical lifecycle
# loop); the registry is pull-based so the hot paths carry no metrics
# sites, and this holds the 2% line on that contract.
now=$(speedup_of "$tmp_hotpath" metrics_off)
awk -v now="$now" 'BEGIN {
    if (now < 0.98) {
        printf "verify: FAIL — metrics_overhead: Off/metered ratio %.3f < 0.980 (metrics=false is not free)\n", now
        exit 1
    }
    printf "verify: metrics_overhead OK — Off/metered ratio %.3f >= 0.980\n", now
}' || status=1

# Gate: thin_routing — the adaptive router's fast path must WIN. The
# malloc_free_thin speedup column is a same-run ratio (site-policy-on
# throughput over forced-Standard on an identical clean-site churn), so
# > 1.0 means routing reclaims real per-free work; scaled by the
# tolerance like every current-run gate. check_baselines.sh holds the
# unscaled 1.0 line on the committed file.
now=$(speedup_of "$tmp_hotpath" malloc_free_thin)
awk -v now="$now" -v tolf="$floor" 'BEGIN {
    eff = 1.0 * tolf
    if (now == "" || now + 0 != now) {
        printf "verify: FAIL — hotpath quick run produced no parsable malloc_free_thin speedup\n"
        exit 1
    }
    if (now + 0 < eff) {
        printf "verify: FAIL — thin_routing: routed/standard ratio %.3f < %.3f (the thin path must win)\n", now, eff
        exit 1
    }
    printf "verify: thin_routing      OK — routed/standard ratio %.3f >= %.3f\n", now, eff
}' || status=1

echo "== scaling --quick =="
cargo run --release -p dangsan-bench --bin scaling -- --quick --out "$tmp_scaling"

scaling_num() {
    awk -v key="\"$2\"" '
        index($0, key) {
            for (i = 1; i <= NF; i++) if (index($i, key)) {
                v = $(i + 1); gsub(/[",]/, "", v); print v; exit
            }
        }
    ' "$1"
}

# Gate: the scaling run's 4t/1t ratio, floored by the machine's recorded
# core count exactly like the committed-baseline gate (>= 1.8 with 4+
# cores), scaled by the tolerance like every current-run gate.
cores=$(scaling_num "$tmp_scaling" cores)
if [[ -n "${VERIFY_SCALING_MIN-}" ]]; then
    floor4=$VERIFY_SCALING_MIN
else
    floor4=$(awk -v c="${cores:-0}" 'BEGIN {
        if (c >= 4) print 1.8; else if (c >= 2) print 0.9; else print 0.7
    }')
fi
for gate in "dangsan_speedup_4t_over_1t:$floor4" "cached_over_locked_1t:0.95"; do
    key=${gate%%:*}
    gate_floor=${gate##*:}
    now=$(scaling_num "$tmp_scaling" "$key")
    awk -v key="$key" -v now="$now" -v gfloor="$gate_floor" -v tolf="$floor" 'BEGIN {
        eff = gfloor * tolf
        if (now == "" || now + 0 != now) {
            printf "verify: FAIL — scaling quick run produced no parsable %s\n", key
            exit 1
        }
        if (now + 0 < eff) {
            printf "verify: FAIL — scaling %s = %.3f below floor %.3f (%.2f x tolerance %.3f)\n", key, now, eff, gfloor, tolf
            exit 1
        }
        printf "verify: %-28s OK — %.3f >= %.3f\n", key, now, eff
    }' || status=1
done

echo "== server --quick =="
tmp_server=$(mktemp /tmp/server.XXXXXX.json)
trap 'rm -f "$tmp_hotpath" "$tmp_scaling" "$tmp_server"' EXIT
cargo run --release -p dangsan-bench --bin server -- --quick --out "$tmp_server"

server_num() {
    scaling_num "$1" "$2"
}

# Gate: the dangsan/baseline capacity ratio must stay within tolerance
# of the committed baseline's. Both sides are same-run ratios (the two
# arms run back to back), so machine noise largely cancels; the now/base
# ratio is printed whether the gate passes or fails.
base=$(server_num BENCH_server.json dangsan_over_baseline_rps)
now=$(server_num "$tmp_server" dangsan_over_baseline_rps)
awk -v base="$base" -v now="$now" -v floor="$floor" 'BEGIN {
    if (now == "" || now + 0 != now || base == "" || base + 0 != base) {
        printf "verify: FAIL — server run produced no parsable dangsan_over_baseline_rps (now \x27%s\x27 base \x27%s\x27)\n", now, base
        exit 1
    }
    ratio = now / base
    ok = ratio >= floor
    printf "verify: server_rps_ratio  %s — now %.3f / base %.3f = ratio %.3f %s %.3f\n", \
        ok ? "OK  " : "FAIL", now, base, ratio, ok ? ">=" : "<", floor
    exit ok ? 0 : 1
}' || status=1

# Gate: open-loop median latency. Lower is better, so the gated ratio is
# base/now; absolute nanoseconds are machine-shaped and noisier than the
# throughput ratios, so the budget is the tolerance applied twice. The
# ratio is printed on pass and on fail alike. The p99/p999 tail is
# queueing-dominated (the offered load is derived from each run's own
# capacity estimate, so whether the run ever falls behind is chaotic —
# observed spread is ~35x run to run): those ratios are printed as INFO
# for the record but only gated for presence/parsability, never floored.
lat_floor=$(awk -v f="$floor" 'BEGIN { printf "%.3f", f * f }')
for gate in dangsan_p50_ns:1 dangsan_p99_ns:0 dangsan_p999_ns:0; do
    key=${gate%%:*}
    hard=${gate##*:}
    base=$(server_num BENCH_server.json "$key")
    now=$(server_num "$tmp_server" "$key")
    awk -v key="$key" -v base="$base" -v now="$now" -v floor="$lat_floor" -v hard="$hard" 'BEGIN {
        if (now == "" || now + 0 != now || base == "" || base + 0 != base) {
            printf "verify: FAIL — server run produced no parsable %s (now \x27%s\x27 base \x27%s\x27)\n", key, now, base
            exit 1
        }
        ratio = base / now
        if (!hard) {
            printf "verify: %-18s INFO — base %.0f / now %.0f = ratio %.3f (tail: not floored)\n", \
                key, base, now, ratio
            exit 0
        }
        ok = ratio >= floor
        printf "verify: %-18s %s — base %.0f / now %.0f = ratio %.3f %s %.3f\n", \
            key, ok ? "OK  " : "FAIL", base, now, ratio, ok ? ">=" : "<", floor
        exit ok ? 0 : 1
    }' || status=1
done

[[ $status -eq 0 ]] || exit 1

echo "verify: all checks passed"
